"""N-level memory hierarchies: HBM -> DRAM -> NVMe (and beyond).

KARMA's original formulation assumes a two-tier hierarchy (device "near"
memory backed by host "far" memory).  ZeRO-Infinity-style workloads break
that assumption: host DRAM itself overflows, and stashes spill to node-local
NVMe.  This module generalizes the near/far pair into an ordered list of
*tiers* joined by *links*:

* :class:`TierSpec` — one level's capacity and intra-tier bandwidth;
* :class:`MemoryHierarchy` — the ordered tier stack plus the per-hop links,
  with transfer-time queries used by the placement policy and the event
  simulator (store-and-forward across hops: a GPU->NVMe demotion stages
  through a DRAM bounce buffer, it does not stream end to end);
* :class:`TieredMemorySpace` — the *runtime* counterpart: one
  capacity-enforced :class:`~repro.hardware.memory_pool.MemoryPool` per
  tier with per-hop swap accounting, consumed by the numeric executor.

Tier indices are hotness-ordered: tier 0 is always the device (HBM), tier 1
the host (DRAM), tier 2 the storage (NVMe).  Links are asymmetric because
flash is: ``links_down[i]`` carries demotions from tier i to tier i+1,
``links_up[i]`` promotions back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .memory_pool import Location, MemoryPool
from .spec import (
    GiB,
    MiB,
    DeviceSpec,
    HostSpec,
    LinkSpec,
    NodeSpec,
    StorageSpec,
    abci_host,
    abci_node,
    abci_nvme,
    karma_swap_link,
    v100_sxm2_16gb,
)

#: Canonical tier names by depth (deeper hierarchies keep extending this).
TIER_NAMES = ("hbm", "dram", "nvme", "network-storage")

#: Tier index of the device pool (the compute tier).
DEVICE_TIER = 0
#: Tier index of the host DRAM pool (the classic "far" memory).
DRAM_TIER = 1
#: Tier index of the node-local storage pool.
STORAGE_TIER = 2

TierRef = Union[int, str, Location]


@dataclass(frozen=True)
class TierSpec:
    """One level of the memory hierarchy.

    ``bandwidth`` is the tier's own memory bandwidth (HBM/DRAM bandwidth,
    or the SSD's internal streaming rate); transfers in or out of the tier
    are bounded by ``min(link bandwidth, both endpoint bandwidths)``, the
    tiered generalization of Eq. 4's min-throughput rule.
    """

    name: str
    capacity: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.bandwidth <= 0:
            raise ValueError(f"tier {self.name!r}: capacity and bandwidth "
                             "must be positive")


@dataclass(frozen=True)
class MemoryHierarchy:
    """An ordered stack of memory tiers joined by point-to-point links.

    ``links_down[i]`` joins ``tiers[i] -> tiers[i+1]`` (demotion direction);
    ``links_up[i]`` the reverse.  When ``links_up`` is omitted the hierarchy
    is symmetric (PCIe-style duplex links at every hop).
    """

    tiers: Tuple[TierSpec, ...]
    links_down: Tuple[LinkSpec, ...]
    links_up: Optional[Tuple[LinkSpec, ...]] = None

    def __post_init__(self) -> None:
        if len(self.tiers) < 2:
            raise ValueError("a hierarchy needs at least two tiers")
        if len(self.links_down) != len(self.tiers) - 1:
            raise ValueError(
                f"{len(self.tiers)} tiers need {len(self.tiers) - 1} links, "
                f"got {len(self.links_down)}")
        if self.links_up is not None \
                and len(self.links_up) != len(self.links_down):
            raise ValueError("links_up must match links_down in length")
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")

    # -- lookup ----------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.tiers)

    def tier_index(self, ref: TierRef) -> int:
        """Resolve a tier reference (index, name, or legacy Location)."""
        if isinstance(ref, Location):
            ref = DEVICE_TIER if ref is Location.NEAR else DRAM_TIER
        if isinstance(ref, str):
            for i, t in enumerate(self.tiers):
                if t.name == ref:
                    return i
            raise KeyError(f"no tier named {ref!r} in "
                           f"{[t.name for t in self.tiers]}")
        if not (0 <= ref < self.depth):
            raise IndexError(f"tier {ref} outside hierarchy of depth "
                             f"{self.depth}")
        return int(ref)

    def tier(self, ref: TierRef) -> TierSpec:
        return self.tiers[self.tier_index(ref)]

    def link_down(self, upper: int) -> LinkSpec:
        """The link carrying demotions from tier ``upper`` to ``upper+1``."""
        return self.links_down[upper]

    def link_up(self, upper: int) -> LinkSpec:
        """The link carrying promotions from tier ``upper+1`` to ``upper``."""
        if self.links_up is not None:
            return self.links_up[upper]
        return self.links_down[upper]

    # -- transfer model ---------------------------------------------------

    def hop_time(self, nbytes: float, upper: int, *, down: bool) -> float:
        """One-hop transfer time between tiers ``upper`` and ``upper+1``.

        Bounded by the link and by both endpoint tiers' own bandwidths
        (Eq. 4 generalized per hop).
        """
        if nbytes <= 0:
            return 0.0
        link = self.link_down(upper) if down else self.link_up(upper)
        bw = min(link.bandwidth, self.tiers[upper].bandwidth,
                 self.tiers[upper + 1].bandwidth)
        return link.latency + nbytes / bw

    def transfer_time(self, nbytes: float, src: TierRef, dst: TierRef) -> float:
        """Store-and-forward time to move ``nbytes`` from ``src`` to ``dst``.

        Each hop completes before the next starts (a GPU->NVMe demotion
        lands fully in the DRAM bounce buffer before the SSD write is
        submitted), so hop times add.
        """
        a, b = self.tier_index(src), self.tier_index(dst)
        if a == b or nbytes <= 0:
            return 0.0
        total = 0.0
        if a < b:  # demotion: walk down
            for upper in range(a, b):
                total += self.hop_time(nbytes, upper, down=True)
        else:      # promotion: walk up
            for upper in range(b, a):
                total += self.hop_time(nbytes, upper, down=False)
        return total

    def effective_bandwidth(self, src: TierRef, dst: TierRef) -> float:
        """Sustained bytes/s between two tiers (latency amortized away)."""
        a, b = self.tier_index(src), self.tier_index(dst)
        if a == b:
            return self.tiers[a].bandwidth
        lo, hi = min(a, b), max(a, b)
        down = a < b
        rates = []
        for upper in range(lo, hi):
            link = self.link_down(upper) if down else self.link_up(upper)
            rates.append(min(link.bandwidth, self.tiers[upper].bandwidth,
                             self.tiers[upper + 1].bandwidth))
        # store-and-forward: serial hops, aggregate rate is the harmonic
        # combination 1 / sum(1/r)
        return 1.0 / sum(1.0 / r for r in rates)

    def storage_tiers(self) -> Tuple[int, ...]:
        """Tier indices below DRAM (the ones behind the storage link)."""
        return tuple(range(STORAGE_TIER, self.depth))

    @property
    def has_storage(self) -> bool:
        return self.depth > STORAGE_TIER

    def capacities(self) -> Tuple[float, ...]:
        return tuple(t.capacity for t in self.tiers)

    def canonical_dict(self) -> Dict[str, object]:
        """Deterministic JSON-ready form for content-addressed digesting.

        Two hierarchies with identical tiers and links canonicalize to
        byte-identical JSON across processes; an asymmetric hierarchy
        (explicit ``links_up``) never collides with its symmetric twin.
        """
        from .spec import canonical_spec

        return canonical_spec(self)

    def describe(self) -> str:
        parts = []
        for i, t in enumerate(self.tiers):
            parts.append(f"[{i}] {t.name} {t.capacity / GiB:.1f} GiB")
            if i < self.depth - 1:
                dn = self.link_down(i).bandwidth / 1e9
                up = self.link_up(i).bandwidth / 1e9
                parts.append(f"--({dn:.1f}/{up:.1f} GB/s)-->")
        return " ".join(parts)


# --------------------------------------------------------------------------
# Constructors
# --------------------------------------------------------------------------

def two_tier_hierarchy(device: Optional[DeviceSpec] = None,
                       host: Optional[HostSpec] = None,
                       link: Optional[LinkSpec] = None) -> MemoryHierarchy:
    """The classic KARMA HBM <-> DRAM pair as a depth-2 hierarchy."""
    device = device or v100_sxm2_16gb()
    host = host or abci_host()
    link = link or karma_swap_link()
    return MemoryHierarchy(
        tiers=(TierSpec("hbm", device.usable_memory, device.mem_bandwidth),
               TierSpec("dram", host.memory, host.mem_bandwidth)),
        links_down=(link,),
    )


def three_tier_hierarchy(device: Optional[DeviceSpec] = None,
                         host: Optional[HostSpec] = None,
                         storage: Optional[StorageSpec] = None,
                         link: Optional[LinkSpec] = None) -> MemoryHierarchy:
    """HBM <-> DRAM <-> NVMe with asymmetric storage links."""
    device = device or v100_sxm2_16gb()
    host = host or abci_host()
    storage = storage or abci_nvme()
    link = link or karma_swap_link()
    # the SSD's internal streaming rate: reads bound promotions, writes
    # bound demotions; the per-direction links already encode that, so the
    # tier's own bandwidth is the faster of the two
    ssd_bw = max(storage.read_bandwidth, storage.write_bandwidth)
    return MemoryHierarchy(
        tiers=(TierSpec("hbm", device.usable_memory, device.mem_bandwidth),
               TierSpec("dram", host.memory, host.mem_bandwidth),
               TierSpec("nvme", storage.capacity, ssd_bw)),
        links_down=(link, storage.write_link()),
        links_up=(link, storage.read_link()),
    )


def hierarchy_from_node(node: NodeSpec,
                        link: Optional[LinkSpec] = None) -> MemoryHierarchy:
    """Derive the hierarchy a node's hardware implies (2 or 3 tiers).

    The HBM<->DRAM hop uses the node's own ``h2d`` link unless ``link``
    overrides it (e.g. with the calibrated swap path — see
    :func:`repro.hardware.spec.karma_swap_link`'s substitution note).
    """
    link = link or node.h2d
    if node.storage is None:
        return two_tier_hierarchy(node.device, node.host, link)
    return three_tier_hierarchy(node.device, node.host, node.storage, link)


def abci_hierarchy() -> MemoryHierarchy:
    """The ABCI node's three-tier hierarchy with the calibrated swap path.

    Like the planner's default transfer model, the HBM<->DRAM hop is the
    calibrated 100 GB/s path rather than raw PCIe (the DESIGN substitution
    that keeps the compute-to-transfer ratio paper-faithful).
    """
    return hierarchy_from_node(abci_node(), link=karma_swap_link())


def tiny_test_hierarchy(hbm: float = 64 * MiB, dram: float = 256 * MiB,
                        nvme: float = 4 * GiB,
                        dram_bw: float = 10e9, link_bw: float = 1e9,
                        nvme_read_bw: float = 0.2e9,
                        nvme_write_bw: float = 0.1e9) -> MemoryHierarchy:
    """A deliberately small hierarchy used by tests to force tier spills."""
    storage = StorageSpec(name="tiny-nvme", capacity=nvme,
                          read_bandwidth=nvme_read_bw,
                          write_bandwidth=nvme_write_bw, latency=100e-6)
    return MemoryHierarchy(
        tiers=(TierSpec("hbm", hbm, 10 * link_bw),
               TierSpec("dram", dram, dram_bw),
               TierSpec("nvme", nvme, max(nvme_read_bw, nvme_write_bw))),
        links_down=(LinkSpec("tiny-link", link_bw, latency=5e-6),
                    storage.write_link()),
        links_up=(LinkSpec("tiny-link", link_bw, latency=5e-6),
                  storage.read_link()),
    )


# --------------------------------------------------------------------------
# Runtime pools
# --------------------------------------------------------------------------

class TieredMemorySpace:
    """One capacity-enforced pool per tier, with per-hop swap accounting.

    The N-tier generalization of :class:`~repro.hardware.memory_pool.
    MemorySpace`: the numeric executor allocates stash bytes in tier pools
    and moves them along the hierarchy, subject to each pool's hard
    capacity (OOM semantics identical to the two-pool case).  The legacy
    ``swap_out_*`` / ``swap_in_*`` counters keep their two-tier meaning —
    traffic leaving / entering the device tier — while ``demote_bytes`` /
    ``promote_bytes`` break every hop out per tier boundary.
    """

    def __init__(self, capacities: Sequence[float],
                 names: Optional[Sequence[str]] = None, *,
                 caching: bool = True):
        if len(capacities) < 2:
            raise ValueError("a tiered space needs at least two tiers")
        if names is None:
            names = [TIER_NAMES[i] if i < len(TIER_NAMES) else f"tier{i}"
                     for i in range(len(capacities))]
        if len(names) != len(capacities):
            raise ValueError("one name required per tier")
        self.pools: List[MemoryPool] = [
            MemoryPool(str(n), cap, caching=caching)
            for n, cap in zip(names, capacities)]
        # hop traffic: (upper tier) -> bytes/count across that boundary
        self.demote_bytes: Dict[int, int] = {}
        self.demote_count: Dict[int, int] = {}
        self.promote_bytes: Dict[int, int] = {}
        self.promote_count: Dict[int, int] = {}
        self.swap_out_bytes = 0
        self.swap_in_bytes = 0
        self.swap_out_count = 0
        self.swap_in_count = 0

    @classmethod
    def from_hierarchy(cls, hierarchy: MemoryHierarchy, *,
                       caching: bool = True) -> "TieredMemorySpace":
        return cls(hierarchy.capacities(),
                   [t.name for t in hierarchy.tiers], caching=caching)

    # -- tier protocol (shared with MemorySpace) --------------------------

    @property
    def num_tiers(self) -> int:
        return len(self.pools)

    @property
    def near(self) -> MemoryPool:
        return self.pools[DEVICE_TIER]

    @property
    def far(self) -> MemoryPool:
        return self.pools[DRAM_TIER]

    def tier_pool(self, tier: TierRef) -> MemoryPool:
        if isinstance(tier, Location):
            tier = DEVICE_TIER if tier is Location.NEAR else DRAM_TIER
        if not (0 <= int(tier) < self.num_tiers):
            raise ValueError(f"no pool for tier {tier} in a "
                             f"{self.num_tiers}-tier space")
        return self.pools[int(tier)]

    # legacy MemorySpace alias so either space type drops into the executor
    def pool(self, location) -> MemoryPool:
        return self.tier_pool(location)

    def record_tier_swap(self, nbytes: int, src: int, dst: int) -> None:
        """Account a stash move from tier ``src`` to tier ``dst``."""
        if src == dst:
            return
        lo, hi = min(src, dst), max(src, dst)
        for upper in range(lo, hi):
            if dst > src:  # demotion
                self.demote_bytes[upper] = \
                    self.demote_bytes.get(upper, 0) + nbytes
                self.demote_count[upper] = self.demote_count.get(upper, 0) + 1
            else:          # promotion
                self.promote_bytes[upper] = \
                    self.promote_bytes.get(upper, 0) + nbytes
                self.promote_count[upper] = \
                    self.promote_count.get(upper, 0) + 1
        if src == DEVICE_TIER:
            self.swap_out_bytes += nbytes
            self.swap_out_count += 1
        if dst == DEVICE_TIER:
            self.swap_in_bytes += nbytes
            self.swap_in_count += 1

    def stats(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for pool in self.pools:
            out.update({f"{pool.name}.{k}": v
                        for k, v in pool.memory_stats().items()})
        for upper, v in sorted(self.demote_bytes.items()):
            out[f"demote[{upper}->{upper + 1}].bytes"] = v
            out[f"demote[{upper}->{upper + 1}].count"] = \
                self.demote_count[upper]
        for upper, v in sorted(self.promote_bytes.items()):
            out[f"promote[{upper + 1}->{upper}].bytes"] = v
            out[f"promote[{upper + 1}->{upper}].count"] = \
                self.promote_count[upper]
        out.update({
            "swap.out_bytes": self.swap_out_bytes,
            "swap.in_bytes": self.swap_in_bytes,
            "swap.out_count": self.swap_out_count,
            "swap.in_count": self.swap_in_count,
        })
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pools = ", ".join(f"{p.name}={p.bytes_in_use}/{p.capacity}"
                          for p in self.pools)
        return f"TieredMemorySpace({pools})"
