"""Per-model empirical memory calibration (the §III-D offline profile).

The paper profiles each model once on the target hardware with PyTorch's
``memory_stats()`` because "simple aggregation of memory requirements per
layer ... could be highly inaccurate": saved-input duplication, cuDNN
workspace choices, allocator rounding and fragmentation all inflate the
activation footprint beyond the analytic sum of layer outputs.

We have no V100 to profile, so these factors are fitted to the *anchors the
paper publishes*: on every Fig. 5 panel "only the first reported mini-batch
size (x-axis) fits in memory", and the introduction states ResNet-200's
in-core limit is six ImageNet samples on 16 GiB.  Each factor below scales
the batch-proportional memory classes so that our in-core batch limit lands
inside the interval those anchors imply; tests assert the anchor property.

A factor > 1 means the framework keeps more bytes alive per activation than
the pure output-tensor sum (typical for conv nets with saved inputs and
workspaces); < 1 means our analytic model double-counts relative to what
PyTorch actually retains (e.g. in-place ReLU and BN folding on ResNet-50's
bottlenecks).
"""

from __future__ import annotations

from typing import Dict

# Two calibrated quantities per model, mirroring the paper's breakdown of
# memory into variable classes (§III-D):
#
# * ACT factor — scales the *unmanaged in-core footprint*: what vanilla
#   PyTorch holds live (saved inputs and outputs, cuDNN workspaces,
#   allocator fragmentation).  This decides whether in-core training fits
#   (the Fig. 5 "only the first batch size fits" anchors).
# * STASH factor — scales the *managed stash*: the bytes KARMA actually
#   keeps between forward and backward and therefore swaps.  Managed
#   execution frees transient workspace and avoids fragmentation, so the
#   stash factor is below the act factor for conv nets.  It is fitted to
#   the Fig. 5 x-axes' second anchor: throughput starts degrading at the
#   second reported batch size, i.e. the stash first overflows capacity
#   just below that point.

# model name -> unmanaged in-core footprint scale (dimensionless)
PROFILED_ACT_FACTOR: Dict[str, float] = {
    "resnet50": 0.70,
    "vgg16": 3.00,
    "resnet200": 5.50,   # anchors the intro's "six samples max" statement
    "wrn28_10": 1.50,
    "resnet1001": 0.70,
    "unet": 1.10,
    # transformer activations follow the analytic model closely (GEMM-only,
    # no conv workspaces); Adam optimizer state is accounted separately.
    "megatron-0.7b": 1.0,
    "megatron-1.2b": 1.0,
    "megatron-2.5b": 1.0,
    "megatron-4.2b": 1.0,
    "megatron-8.3b": 1.0,
    "turing-nlg": 1.0,
}

# model name -> managed stash scale (what swaps; <= act factor).  Fitted so
# the stash first exceeds capacity just at the second Fig. 5 batch size —
# "the performance begins to drop ... starting from the second data point
# on each x-axis" (§IV-B.1).
PROFILED_STASH_FACTOR: Dict[str, float] = {
    "resnet50": 0.43,
    "vgg16": 2.06,
    "resnet200": 4.38,
    "wrn28_10": 0.96,
    "resnet1001": 0.46,
    "unet": 0.72,
    "megatron-0.7b": 1.0,
    "megatron-1.2b": 1.0,
    "megatron-2.5b": 1.0,
    "megatron-4.2b": 1.0,
    "megatron-8.3b": 1.0,
    "turing-nlg": 1.0,
}

# model name -> optimizer state slots per parameter (SGD momentum = 1,
# Adam = 2).  The CNNs train with momentum SGD, the LMs with Adam.
OPTIMIZER_SLOTS: Dict[str, float] = {
    "resnet50": 1.0,
    "vgg16": 1.0,
    "resnet200": 1.0,
    "wrn28_10": 1.0,
    "resnet1001": 1.0,
    "unet": 1.0,
    "megatron-0.7b": 2.0,
    "megatron-1.2b": 2.0,
    "megatron-2.5b": 2.0,
    "megatron-4.2b": 2.0,
    "megatron-8.3b": 2.0,
    "turing-nlg": 2.0,
}


def act_factor_for(model_name: str) -> float:
    """Calibrated unmanaged-footprint factor (1.0 for unprofiled models)."""
    return PROFILED_ACT_FACTOR.get(model_name, 1.0)


def stash_factor_for(model_name: str) -> float:
    """Calibrated managed-stash factor (1.0 for unprofiled models)."""
    return PROFILED_STASH_FACTOR.get(model_name, 1.0)


def optimizer_slots_for(model_name: str) -> float:
    """Optimizer state slots per parameter (momentum default)."""
    return OPTIMIZER_SLOTS.get(model_name, 1.0)
