"""Trace-driven calibration: fit cost-model inputs from runtime traces.

The analytic :class:`~repro.costs.profiler.CostModel` prices every layer
from FLOP formulas and a device spec; the validation harness
(:mod:`repro.eval.validation`) then measures how a real interleaved
runtime executes the resulting plan.  This module closes the remaining
loop — *profile once, then project* (the paper's Fig. 1 step 2
methodology): it reads the measured :class:`~repro.runtime.streams.OpRecord`
stream out of a :class:`~repro.runtime.async_executor.RuntimeTrace` and
least-squares-fits

* **per-op compute scales** — one multiplicative factor per block,
  regressed through the origin over that block's F/R/B records
  (``scale_b = sum(measured * modeled) / sum(modeled ** 2)``), then
  broadcast to every layer name inside the block.  The resulting
  ``op_scales`` dict is exactly what ``plan(calibration=...)`` and
  :class:`~repro.costs.profiler.CostModel` consume.
* **per-link latency/bandwidth** — an ordinary least-squares line
  ``duration = latency + nbytes / bandwidth`` over each link direction's
  transfer records (``h2d``/``d2h``/``d2s``/``s2d``), with a
  deterministic degenerate fallback when the samples cannot identify an
  intercept.  Link fits are diagnostic: ``python -m repro calibrate``
  reports them against the configured interconnect model.

Wall-clock durations are converted back to modeled seconds by dividing
out the pacer's ``time_scale`` before fitting, so artifacts are
comparable across runs with different wall budgets.

Fits are frozen into a versioned :class:`CalibrationArtifact` (JSON on
disk); ``python -m repro calibrate`` writes one and
``python -m repro validate --calibration`` replays it through the
planner.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

#: Version stamp written into every artifact; readers reject mismatches.
CALIBRATION_SCHEMA_VERSION = 1

#: GPU op labels the compute fit understands: kind letter + 1-based block.
_GPU_LABEL = re.compile(r"^([FBR])(\d+)$")


@dataclass(frozen=True)
class LinkFit:
    """Fitted latency/bandwidth of one link direction (modeled seconds).

    ``bandwidth_bytes_per_s == 0`` means the samples could not identify a
    slope (no bytes moved, or no time passed); consumers must treat such
    a fit as "no information", never divide by it.
    """

    resource: str
    latency_s: float
    bandwidth_bytes_per_s: float
    samples: int
    rms_residual_s: float

    def to_json(self) -> Dict[str, object]:
        return {"resource": self.resource,
                "latency_s": self.latency_s,
                "bandwidth_bytes_per_s": self.bandwidth_bytes_per_s,
                "samples": self.samples,
                "rms_residual_s": self.rms_residual_s}

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "LinkFit":
        return cls(resource=str(payload["resource"]),
                   latency_s=float(payload["latency_s"]),          # type: ignore[arg-type]
                   bandwidth_bytes_per_s=float(
                       payload["bandwidth_bytes_per_s"]),          # type: ignore[arg-type]
                   samples=int(payload["samples"]),                # type: ignore[arg-type]
                   rms_residual_s=float(payload["rms_residual_s"]))  # type: ignore[arg-type]


@dataclass
class CalibrationArtifact:
    """A versioned, serializable bundle of trace-fitted cost parameters.

    ``op_scales`` maps layer names to multiplicative compute-time factors
    — pass it straight to ``plan(calibration=...)`` or
    ``profile_graph(calibration=...)``.  ``links`` holds the per-link
    :class:`LinkFit` diagnostics.
    """

    model: str
    time_scale: float
    op_scales: Dict[str, float]
    links: Dict[str, LinkFit]
    version: int = CALIBRATION_SCHEMA_VERSION
    meta: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "schema_version": self.version,
            "model": self.model,
            "time_scale": self.time_scale,
            "op_scales": {k: self.op_scales[k]
                          for k in sorted(self.op_scales)},
            "links": {r: self.links[r].to_json()
                      for r in sorted(self.links)},
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "CalibrationArtifact":
        version = int(payload.get("schema_version", -1))  # type: ignore[arg-type]
        if version != CALIBRATION_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported calibration schema version {version}; "
                f"this build reads version {CALIBRATION_SCHEMA_VERSION}")
        links = {r: LinkFit.from_json(f)  # type: ignore[arg-type]
                 for r, f in dict(payload.get("links", {})).items()}  # type: ignore[arg-type]
        return cls(model=str(payload.get("model", "")),
                   time_scale=float(payload.get("time_scale", 0.0)),  # type: ignore[arg-type]
                   op_scales={str(k): float(v) for k, v  # type: ignore[arg-type]
                              in dict(payload.get("op_scales", {})).items()},  # type: ignore[arg-type]
                   links=links, version=version,
                   meta=dict(payload.get("meta", {})))  # type: ignore[arg-type]

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2,
                                         sort_keys=True) + "\n")

    @classmethod
    def load(cls, path) -> "CalibrationArtifact":
        return cls.from_json(json.loads(Path(path).read_text()))

    def summary(self) -> str:
        scales = sorted(self.op_scales.values())
        lines = [f"CalibrationArtifact[{self.model or '?'}] "
                 f"schema v{self.version}",
                 f"  op scales : {len(self.op_scales)} layers"]
        if scales:
            lines.append(f"    min/median/max : {scales[0]:.4f} / "
                         f"{scales[len(scales) // 2]:.4f} / "
                         f"{scales[-1]:.4f}")
        for resource in sorted(self.links):
            fit = self.links[resource]
            if fit.samples == 0:
                continue
            bw = fit.bandwidth_bytes_per_s
            bw_str = f"{bw / 1e9:8.3f} GB/s" if bw > 0 else "   (unfit)"
            lines.append(f"  {resource:>4} : {bw_str}  "
                         f"latency {fit.latency_s * 1e6:8.2f} us  "
                         f"({fit.samples} transfers, rms "
                         f"{fit.rms_residual_s * 1e6:.2f} us)")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fitting
# ---------------------------------------------------------------------------

def _gpu_sample(record, costs, n_blocks: int) -> Optional[Tuple[int, float]]:
    """(block index, modeled reference seconds) for one GPU record.

    Returns None for records the fit cannot use: non-F/R/B labels, block
    indices outside the plan, or zero modeled references (which carry no
    slope information).  The record's ``block`` field is authoritative;
    the label's 1-based suffix is the fallback for records assembled
    outside the executor.
    """
    m = _GPU_LABEL.match(record.label)
    if m is None:
        return None
    b = record.block if 0 <= record.block < n_blocks else int(m.group(2)) - 1
    if not (0 <= b < n_blocks and b < len(costs.fw)):
        return None
    ref = float(costs.bw[b] if m.group(1) == "B" else costs.fw[b])
    if ref <= 0:
        return None
    return b, ref


def fit_op_scales(records: Iterable, costs, blocks: Sequence[Tuple[int, int]],
                  layer_names: Sequence[str], *,
                  time_scale: float) -> Dict[str, float]:
    """Per-layer compute scales from a trace's GPU records.

    One through-origin least-squares scale per block — F/R records
    regress against ``costs.fw[b]``, B records against ``costs.bw[b]`` —
    broadcast to every layer name inside the block's ``[start, end)``
    range.  Blocks with no usable samples (or a zero modeled reference)
    keep scale 1.0.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be > 0 to recover modeled "
                         "durations from wall-clock records")
    num = np.zeros(len(blocks))
    den = np.zeros(len(blocks))
    for r in records:
        if r.resource != "gpu":
            continue
        sample = _gpu_sample(r, costs, len(blocks))
        if sample is None:
            continue
        b, ref = sample
        measured = (r.finish - r.start) / time_scale
        num[b] += measured * ref
        den[b] += ref * ref
    out: Dict[str, float] = {}
    for b, (s, e) in enumerate(blocks):
        scale = num[b] / den[b] if den[b] > 0 else 1.0
        if not math.isfinite(scale) or scale <= 0:
            scale = 1.0
        for i in range(s, e):
            out[layer_names[i]] = float(scale)
    return out


def fit_link(resource: str, records: Iterable, *,
             time_scale: float) -> LinkFit:
    """OLS latency/bandwidth of one link from its transfer records.

    Solves ``duration = latency + nbytes / bandwidth`` over the
    resource's records (durations first divided by ``time_scale``).
    Degenerate sample sets — fewer than two records, all-identical byte
    counts, or a non-positive fitted slope — deterministically fall back
    to zero latency and the aggregate-throughput bandwidth
    ``sum(nbytes) / sum(duration)``.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be > 0 to recover modeled "
                         "durations from wall-clock records")
    xs: List[float] = []
    ys: List[float] = []
    for r in records:
        if r.resource != resource:
            continue
        xs.append(float(r.nbytes))
        ys.append((r.finish - r.start) / time_scale)
    n = len(xs)
    if n == 0:
        return LinkFit(resource, 0.0, 0.0, 0, 0.0)
    x = np.asarray(xs)
    y = np.asarray(ys)

    def aggregate() -> LinkFit:
        total_y = float(y.sum())
        bw = float(x.sum()) / total_y if total_y > 0 else 0.0
        resid = y - (x / bw if bw > 0 else 0.0)
        rms = float(np.sqrt(np.mean(resid * resid)))
        return LinkFit(resource, 0.0, bw, n, rms)

    if n < 2 or np.unique(x).size < 2:
        return aggregate()
    design = np.stack([np.ones(n), x], axis=1)
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    latency, inv_bw = float(coef[0]), float(coef[1])
    if inv_bw <= 0:
        return aggregate()
    resid = y - (latency + x * inv_bw)
    rms = float(np.sqrt(np.mean(resid * resid)))
    return LinkFit(resource, max(0.0, latency), 1.0 / inv_bw, n, rms)


def fit_trace(records: Iterable, *, costs,
              blocks: Sequence[Tuple[int, int]],
              layer_names: Sequence[str], time_scale: float,
              model: str = "",
              meta: Optional[Dict[str, object]] = None) \
        -> CalibrationArtifact:
    """Fit a full :class:`CalibrationArtifact` from one trace.

    Args:
        records: the trace's :class:`~repro.runtime.streams.OpRecord`
            sequence (a ``RuntimeTrace.records`` list works directly).
        costs: the :class:`~repro.sim.trainer_sim.BlockCosts` the pacer
            priced the run with (duck-typed: needs ``fw``/``bw``).
        blocks: the executed plan's half-open layer ranges.
        layer_names: all layer names of the graph, in topological order.
        time_scale: the pacer's wall-seconds-per-modeled-second factor.
        model: name stamped into the artifact.
        meta: extra JSON-native metadata to carry along.
    """
    # materialize once: the fitters each iterate the records
    recs = list(records)
    # lazy import: repro.runtime imports repro.core which imports this
    # package, so a module-level import would be cyclic
    from ..runtime.streams import LINK_RESOURCES

    op_scales = fit_op_scales(recs, costs, blocks, layer_names,
                              time_scale=time_scale)
    links = {r: fit_link(r, recs, time_scale=time_scale)
             for r in LINK_RESOURCES}
    return CalibrationArtifact(model=model, time_scale=time_scale,
                               op_scales=op_scales, links=links,
                               meta=dict(meta or {}))


def fit_validation_report(report) -> CalibrationArtifact:
    """Fit an artifact from one :class:`~repro.eval.validation.ValidationReport`.

    The report must have been produced by ``validate_config`` (it stashes
    the runtime trace, the bound block costs, and the planner output the
    fit needs).
    """
    trace = report.runtime_trace
    kp = report.karma_plan
    costs = report.block_costs
    if trace is None or kp is None or costs is None:
        raise ValueError("report lacks raw artifacts; run validate_config "
                         "to produce fit inputs")
    names = [kp.cost.layer(i).name for i in range(len(kp.cost))]
    return fit_trace(trace.records, costs=costs, blocks=kp.plan.blocks,
                     layer_names=names, time_scale=report.time_scale,
                     model=report.config,
                     meta={"config": report.config,
                           "batch_size": report.batch_size,
                           "num_blocks": report.num_blocks})


def merge_artifacts(artifacts: Sequence[CalibrationArtifact]) \
        -> CalibrationArtifact:
    """Pool several artifacts (e.g. one per validation config) into one.

    Op scales are unioned — later artifacts win on (unexpected) name
    collisions.  Link fits are pooled as sample-weighted means of
    latency and inverse bandwidth; unfit links (zero bandwidth) carry no
    weight.  ``time_scale`` is not meaningful across runs and is stored
    as 0.
    """
    if not artifacts:
        raise ValueError("nothing to merge")
    if len(artifacts) == 1:
        return artifacts[0]
    op_scales: Dict[str, float] = {}
    for art in artifacts:
        op_scales.update(art.op_scales)
    resources = sorted({r for art in artifacts for r in art.links})
    links: Dict[str, LinkFit] = {}
    for resource in resources:
        fits = [art.links[resource] for art in artifacts
                if resource in art.links]
        weighted = [(f, f.samples) for f in fits
                    if f.samples > 0 and f.bandwidth_bytes_per_s > 0]
        total = sum(w for _, w in weighted)
        if total == 0:
            links[resource] = LinkFit(resource, 0.0, 0.0,
                                      sum(f.samples for f in fits), 0.0)
            continue
        latency = sum(f.latency_s * w for f, w in weighted) / total
        inv_bw = sum(w / f.bandwidth_bytes_per_s
                     for f, w in weighted) / total
        rms = sum(f.rms_residual_s * w for f, w in weighted) / total
        links[resource] = LinkFit(resource, latency, 1.0 / inv_bw,
                                  sum(f.samples for f in fits), rms)
    return CalibrationArtifact(
        model="+".join(art.model for art in artifacts),
        time_scale=0.0, op_scales=op_scales, links=links,
        meta={"merged_from": [art.model for art in artifacts]})
