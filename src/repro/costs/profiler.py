"""Offline profiling: the cost tables KARMA's planner consumes (Fig. 1, step 2).

The paper gathers metadata three ways — static analysis (FLOP formulas),
device query (hardware spec), and instrumentation/benchmarks (empirical
memory via ``memory_stats()``).  :class:`CostModel` fuses all three into
per-layer forward/backward times and memory classes, with prefix sums so
that any contiguous block's cost is an O(1) query — the blocking DP
evaluates O(L^2) candidate blocks, so this matters for ResNet-1001.

An optional calibration hook rescales analytic times toward measured ones
(the numeric engine's wall-clock profile), mirroring the paper's
profile-once-then-project methodology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..graph.layer_graph import LayerGraph
from ..hardware.interconnect import TransferModel
from ..hardware.spec import DeviceSpec
from .flops import backward_flops, forward_flops
from .memory import DTYPE_BYTES, BlockMemory, LayerMemory, layer_memory


@dataclass(frozen=True)
class LayerCost:
    """One layer's compute times and memory footprint at a fixed batch."""

    index: int
    name: str
    fw_time: float
    bw_time: float
    memory: LayerMemory


class CostModel:
    """Per-layer and per-block cost oracle for one (model, device, batch).

    All block queries are over half-open index ranges ``[start, end)`` in
    the graph's topological order, matching the planner's block definition.
    """

    def __init__(self, graph: LayerGraph, device: DeviceSpec,
                 transfer: TransferModel, batch_size: int,
                 dtype_bytes: int = DTYPE_BYTES,
                 calibration: Optional[Dict[str, float]] = None,
                 act_factor: float = 1.0,
                 optimizer_slots: float = 1.0):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.graph = graph
        self.device = device
        self.transfer = transfer
        self.batch_size = batch_size
        self.dtype_bytes = dtype_bytes
        self.act_factor = act_factor
        self.optimizer_slots = optimizer_slots

        self.calibration: Dict[str, float] = dict(calibration or {})

        n = len(graph)
        self._layers: List[LayerCost] = []
        fw = np.zeros(n)
        bw = np.zeros(n)
        weights = np.zeros(n, dtype=np.int64)
        wgrads = np.zeros(n, dtype=np.int64)
        acts = np.zeros(n, dtype=np.int64)
        act_grads = np.zeros(n, dtype=np.int64)
        workspaces = np.zeros(n, dtype=np.int64)
        inputs = np.zeros(n, dtype=np.int64)
        for i, spec in enumerate(graph):
            mem = layer_memory(spec, batch_size, dtype_bytes, act_factor)
            bytes_fw = mem.inputs + mem.activations + mem.weights
            bytes_bw = bytes_fw + mem.activation_grads + mem.weight_grads
            t_fw = device.compute_time(forward_flops(spec, batch_size), bytes_fw)
            t_bw = device.compute_time(backward_flops(spec, batch_size), bytes_bw)
            scale = calibration.get(spec.name, 1.0) if calibration else 1.0
            t_fw *= scale
            t_bw *= scale
            self._layers.append(LayerCost(i, spec.name, t_fw, t_bw, mem))
            fw[i] = t_fw
            bw[i] = t_bw
            weights[i] = mem.weights
            wgrads[i] = mem.weight_grads
            acts[i] = mem.activations
            act_grads[i] = mem.activation_grads
            workspaces[i] = mem.workspace
            inputs[i] = mem.inputs
        # prefix sums (index 0 is the empty prefix)
        self._fw_prefix = np.concatenate([[0.0], np.cumsum(fw)])
        self._bw_prefix = np.concatenate([[0.0], np.cumsum(bw)])
        self._w_prefix = np.concatenate([[0], np.cumsum(weights)])
        self._wg_prefix = np.concatenate([[0], np.cumsum(wgrads)])
        self._a_prefix = np.concatenate([[0], np.cumsum(acts)])
        # per-layer arrays for the range-max / gather block queries
        self._act_grads = act_grads
        self._workspaces = workspaces
        self._inputs = inputs

    # -- per-layer ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._layers)

    def layer(self, i: int) -> LayerCost:
        return self._layers[i]

    def fw_time(self, i: int) -> float:
        return self._layers[i].fw_time

    def bw_time(self, i: int) -> float:
        return self._layers[i].bw_time

    def layer_mem(self, i: int) -> LayerMemory:
        return self._layers[i].memory

    # -- per-block (O(1) via prefix sums) -----------------------------------

    def _check(self, start: int, end: int) -> None:
        if not (0 <= start < end <= len(self._layers)):
            raise ValueError(f"invalid block [{start}, {end})")

    def block_fw_time(self, start: int, end: int) -> float:
        self._check(start, end)
        return float(self._fw_prefix[end] - self._fw_prefix[start])

    def block_bw_time(self, start: int, end: int) -> float:
        self._check(start, end)
        return float(self._bw_prefix[end] - self._bw_prefix[start])

    def block_weight_bytes(self, start: int, end: int) -> int:
        self._check(start, end)
        return int(self._w_prefix[end] - self._w_prefix[start])

    def block_activation_bytes(self, start: int, end: int) -> int:
        self._check(start, end)
        return int(self._a_prefix[end] - self._a_prefix[start])

    def block_swap_bytes(self, start: int, end: int) -> int:
        """Bytes travelling per swap of this block (weights + stash)."""
        return (self.block_weight_bytes(start, end)
                + self.block_activation_bytes(start, end))

    def block_swap_time(self, start: int, end: int) -> float:
        """One-way transfer time of the block (Eq. 4's min-throughput)."""
        return self.transfer.swap_time(self.block_swap_bytes(start, end))

    def block_memory(self, start: int, end: int) -> BlockMemory:
        # Served from the per-layer arrays built at construction: block
        # aggregation is pure integer arithmetic (sums via prefix diffs,
        # maxes via range max), so this is exactly equal to — and ~100x
        # faster than — re-running :func:`repro.costs.memory.block_memory`
        # over the layer range.  The blocking search prices O(10^3) blocks
        # per candidate grid, which made the per-call layer scan the
        # single hottest path of an uncached evaluation.
        self._check(start, end)
        return BlockMemory(
            start=start,
            end=end,
            weights=int(self._w_prefix[end] - self._w_prefix[start]),
            weight_grads=int(self._wg_prefix[end] - self._wg_prefix[start]),
            activations=int(self._a_prefix[end] - self._a_prefix[start]),
            activation_grads=int(self._act_grads[start:end].max()),
            peak_workspace=int(self._workspaces[start:end].max()),
            input_bytes=int(self._inputs[start]),
        )

    def persistent_bytes(self) -> int:
        """Weights + gradients + optimizer state for the whole model."""
        w = self.total_weight_bytes
        return int(w * (2.0 + self.optimizer_slots))

    # -- whole model ---------------------------------------------------------

    @property
    def total_fw_time(self) -> float:
        return float(self._fw_prefix[-1])

    @property
    def total_bw_time(self) -> float:
        return float(self._bw_prefix[-1])

    @property
    def total_weight_bytes(self) -> int:
        return int(self._w_prefix[-1])

    @property
    def total_activation_bytes(self) -> int:
        return int(self._a_prefix[-1])

    def iteration_compute_time(self) -> float:
        """Pure compute time of one iteration (no stalls): fw + bw."""
        return self.total_fw_time + self.total_bw_time

    def summary(self) -> str:
        g = self.graph
        lines = [
            f"CostModel[{g.name} @ batch {self.batch_size} on {self.device.name}]",
            f"  layers           : {len(self)}",
            f"  params           : {self.total_weight_bytes // self.dtype_bytes:,}",
            f"  fw time          : {self.total_fw_time * 1e3:9.3f} ms",
            f"  bw time          : {self.total_bw_time * 1e3:9.3f} ms",
            f"  weight bytes     : {self.total_weight_bytes / 2**20:9.1f} MiB",
            f"  activation bytes : {self.total_activation_bytes / 2**20:9.1f} MiB",
            f"  swap throughput  : {self.transfer.swap_throughput() / 1e9:6.1f} GB/s",
        ]
        return "\n".join(lines)


def profile_graph(graph: LayerGraph, device: DeviceSpec,
                  transfer: TransferModel, batch_size: int,
                  calibration: Optional[Dict[str, float]] = None,
                  act_factor: Optional[float] = None,
                  optimizer_slots: Optional[float] = None) -> CostModel:
    """The offline profiling entry point (Fig. 1 steps 1+2).

    When ``act_factor``/``optimizer_slots`` are omitted, the per-model
    calibration table (the stand-in for the paper's empirical V100 profile)
    supplies them based on the graph's name.  Note that cost models use the
    *managed stash* factor — the bytes KARMA actually retains and swaps —
    not the unmanaged in-core footprint factor used by ``fits_in_core``.
    """
    from .calibration import optimizer_slots_for, stash_factor_for

    graph.validate()
    if act_factor is None:
        act_factor = stash_factor_for(graph.name)
    if optimizer_slots is None:
        optimizer_slots = optimizer_slots_for(graph.name)
    return CostModel(graph, device, transfer, batch_size,
                     calibration=calibration, act_factor=act_factor,
                     optimizer_slots=optimizer_slots)


def calibration_from_measurements(analytic: Sequence[float],
                                  measured: Sequence[float],
                                  names: Sequence[str]) -> Dict[str, float]:
    """Per-layer scale factors turning analytic times into measured times.

    Layers whose analytic estimate is zero (metadata ops) keep scale 1.
    """
    if not (len(analytic) == len(measured) == len(names)):
        raise ValueError("length mismatch between analytic/measured/names")
    out: Dict[str, float] = {}
    for a, m, n in zip(analytic, measured, names):
        out[n] = (m / a) if a > 0 else 1.0
    return out
