"""Per-layer and per-block memory requirement model (§III-D).

The paper stresses that naive per-layer aggregation is inaccurate because
the framework's caching allocator, fusion, and workspace choices distort the
footprint; they profile once per model and then *project* across batch sizes
by breaking usage into variable classes:

    inputs | weights | weight gradients | activations | activation gradients

We implement exactly that decomposition.  :class:`LayerMemory` is the
analytic prior; :mod:`repro.costs.profiler` refines it against the numeric
engine's allocator (the 'offline profiling' step) and the batch-size
projection then only rescales the batch-proportional classes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..graph.layer_graph import LayerGraph, LayerKind, LayerSpec
from .flops import param_count

DTYPE_BYTES = 4  # FP32 training throughout, as in the paper's PyTorch setup

# cuDNN-style workspace as a fraction of activation bytes, per kind.
# Convolutions using implicit-GEMM need im2col-sized scratch.
_WORKSPACE_FACTOR: Dict[LayerKind, float] = {
    LayerKind.CONV2D: 1.0,
    LayerKind.ATTENTION: 1.5,   # score matrix scratch
    LayerKind.LSTM: 0.5,
    LayerKind.UPSAMPLE: 1.0,
}


@dataclass(frozen=True)
class LayerMemory:
    """Byte footprint of one layer at a given batch size.

    * ``weights`` / ``weight_grads``: batch-independent
    * ``inputs`` / ``activations`` / ``activation_grads``: scale with batch
    * ``workspace``: transient scratch, live only while the layer computes
    """

    name: str
    weights: int
    weight_grads: int
    inputs: int
    activations: int
    activation_grads: int
    workspace: int

    @property
    def resident_forward(self) -> int:
        """Bytes that must be near-resident to run this layer's forward."""
        return self.weights + self.inputs + self.activations + self.workspace

    @property
    def resident_backward(self) -> int:
        """Bytes needed near for the backward step of this layer."""
        return (self.weights + self.weight_grads + self.inputs
                + self.activations + self.activation_grads + self.workspace)

    @property
    def persistent(self) -> int:
        """Bytes that persist across the whole iteration (weights + grads)."""
        return self.weights + self.weight_grads

    @property
    def stashed(self) -> int:
        """Bytes stashed between forward and backward (saved activations)."""
        return self.activations

    @property
    def total(self) -> int:
        return (self.weights + self.weight_grads + self.inputs
                + self.activations + self.activation_grads)


def layer_memory(spec: LayerSpec, batch_size: int,
                 dtype_bytes: int = DTYPE_BYTES,
                 act_factor: float = 1.0) -> LayerMemory:
    """Analytic memory footprint of ``spec`` for ``batch_size`` samples.

    ``act_factor`` is the per-model empirical correction from offline
    profiling (§III-D): the paper measures each model once with
    ``memory_stats()`` because allocator caching, saved-input duplication
    and cuDNN workspaces make the analytic activation sum "highly
    inaccurate"; the factor rescales the batch-proportional classes to the
    measured footprint and is then *projected* across batch sizes.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if act_factor <= 0:
        raise ValueError("act_factor must be positive")
    p = param_count(spec) * dtype_bytes
    in_bytes = int(spec.input_elems * batch_size * dtype_bytes * act_factor)
    out_bytes = int(spec.output_elems * batch_size * dtype_bytes * act_factor)
    # dropout stashes its mask; pooling stashes argmax indices; both scale
    # with the output, which the activation term already covers.
    ws = int(_WORKSPACE_FACTOR.get(spec.kind, 0.0) * out_bytes)
    return LayerMemory(
        name=spec.name,
        weights=p,
        weight_grads=p,
        inputs=in_bytes,
        activations=out_bytes,
        activation_grads=out_bytes,
        workspace=ws,
    )


@dataclass(frozen=True)
class BlockMemory:
    """Aggregated footprint of a block (consecutive layers)."""

    start: int
    end: int  # half-open
    weights: int
    weight_grads: int
    activations: int
    activation_grads: int
    peak_workspace: int
    input_bytes: int  # the block's external input activation

    @property
    def swap_bytes(self) -> int:
        """Bytes moved when this block is swapped (weights + stash).

        What travels between near and far memory for an out-of-core block:
        its parameters and the activations stashed for backward.
        """
        return self.weights + self.activations

    @property
    def resident_forward(self) -> int:
        return (self.weights + self.input_bytes + self.activations
                + self.peak_workspace)

    @property
    def resident_backward(self) -> int:
        return (self.weights + self.weight_grads + self.input_bytes
                + self.activations + self.activation_grads
                + self.peak_workspace)


def block_memory(graph: LayerGraph, start: int, end: int, batch_size: int,
                 dtype_bytes: int = DTYPE_BYTES,
                 act_factor: float = 1.0) -> BlockMemory:
    """Aggregate :class:`LayerMemory` over layers ``[start, end)``."""
    if not (0 <= start < end <= len(graph)):
        raise ValueError(f"invalid block range [{start}, {end})")
    mems = [layer_memory(graph[i], batch_size, dtype_bytes, act_factor)
            for i in range(start, end)]
    return BlockMemory(
        start=start,
        end=end,
        weights=sum(m.weights for m in mems),
        weight_grads=sum(m.weight_grads for m in mems),
        activations=sum(m.activations for m in mems),
        activation_grads=max((m.activation_grads for m in mems), default=0),
        peak_workspace=max((m.workspace for m in mems), default=0),
        input_bytes=mems[0].inputs if mems else 0,
    )


def model_memory_total(graph: LayerGraph, batch_size: int,
                       dtype_bytes: int = DTYPE_BYTES,
                       act_factor: float = 1.0,
                       optimizer_slots: float = 1.0) -> int:
    """Footprint of in-core training: weights + grads + optimizer state for
    all layers, plus all stashed activations, plus the largest transients.

    ``optimizer_slots`` counts per-parameter optimizer buffers (1 for SGD
    momentum, 2 for Adam's moments).
    """
    mems = [layer_memory(spec, batch_size, dtype_bytes, act_factor)
            for spec in graph]
    weights = sum(m.weights for m in mems)
    persistent = sum(m.persistent for m in mems) + int(optimizer_slots * weights)
    stash = sum(m.stashed for m in mems)
    transient = max((m.workspace + m.activation_grads for m in mems), default=0)
    return persistent + stash + transient


def fits_in_core(graph: LayerGraph, batch_size: int, capacity: float,
                 dtype_bytes: int = DTYPE_BYTES,
                 act_factor: float = 1.0,
                 optimizer_slots: float = 1.0) -> bool:
    """Would vanilla (no-swap) training fit in ``capacity`` bytes?"""
    total = model_memory_total(graph, batch_size, dtype_bytes, act_factor,
                               optimizer_slots)
    return total <= capacity


def max_in_core_batch(graph: LayerGraph, capacity: float,
                      dtype_bytes: int = DTYPE_BYTES,
                      act_factor: float = 1.0,
                      optimizer_slots: float = 1.0,
                      upper: int = 1 << 20) -> int:
    """Largest batch size that fits in-core (0 if even batch 1 does not).

    Memory is monotone in batch size, so binary search applies.  This is
    how the Fig. 5 x-axes are anchored: only the first reported batch size
    fits in device memory.
    """

    def fits(b: int) -> bool:
        return fits_in_core(graph, b, capacity, dtype_bytes, act_factor,
                            optimizer_slots)

    if not fits(1):
        return 0
    lo, hi = 1, 2
    while hi <= upper and fits(hi):
        lo, hi = hi, hi * 2
    hi = min(hi, upper)
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid
    return lo


def projected_memory(profile_bytes: int, profile_batch: int,
                     batch_independent: int, target_batch: int) -> int:
    """Project a profiled footprint to a new batch size (§III-D).

    ``profile_bytes`` was measured at ``profile_batch``;
    ``batch_independent`` is the portion attributed to weights/gradients/
    context.  The batch-proportional remainder rescales linearly.
    """
    if profile_batch < 1 or target_batch < 1:
        raise ValueError("batch sizes must be >= 1")
    variable = max(0, profile_bytes - batch_independent)
    return batch_independent + int(math.ceil(
        variable * (target_batch / profile_batch)))
