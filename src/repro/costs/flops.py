"""Analytic per-layer operation counts (§III-C, items 1-9).

The paper's proxy for block compute cost is the aggregate number of
arithmetic operations of the layers in the block; framework-level fusion has
minimal effect on that aggregate (§III-C, citing Mittal & Vaishay).  We
implement the paper's formulas literally, per *sample*, and scale by batch
size at the call site.  A FLOP here counts one arithmetic operation, so one
multiply-accumulate contributes two.

Backward-pass costs follow the standard accounting: a parametric layer's
backward computes both input gradients and weight gradients, costing about
twice its forward; element-wise/non-parametric layers cost about one
forward.  These factors are exposed (not hard-coded) so ablations can vary
them.
"""

from __future__ import annotations

from typing import Dict

from ..graph.layer_graph import LayerKind, LayerSpec

# backward/forward cost ratios per kind (2x for layers with weight grads)
BACKWARD_FACTOR: Dict[LayerKind, float] = {
    LayerKind.CONV2D: 2.0,
    LayerKind.LINEAR: 2.0,
    LayerKind.LSTM: 2.0,
    LayerKind.ATTENTION: 2.0,
    LayerKind.EMBEDDING: 1.0,   # backward is a scatter-add of output grads
    LayerKind.UPSAMPLE: 2.0,
    LayerKind.BATCHNORM: 1.5,
    LayerKind.LAYERNORM: 1.5,
}
DEFAULT_BACKWARD_FACTOR = 1.0


def conv2d_flops(spec: LayerSpec) -> float:
    """|Y| * K * K * C_in MACs -> 2 FLOPs each (§III-C.1).

    When an algorithm other than direct convolution is used the count is
    adjusted by ``attrs['algo_factor']`` (e.g. GEMM-based/Winograd), as the
    paper adjusts per cuDNN algorithm type.
    """
    k = spec.attr("kernel")
    c_in = spec.attr("in_channels")
    algo = spec.attr("algo_factor", 1.0)
    groups = spec.attr("groups", 1.0)
    macs = spec.output_elems * k * k * (c_in / groups)
    return 2.0 * macs * algo


def relu_flops(spec: LayerSpec) -> float:
    """|Y| comparison operations (§III-C.2)."""
    return float(spec.output_elems)


def gelu_flops(spec: LayerSpec) -> float:
    """tanh-approximation GELU: ~8 ops per element."""
    return 8.0 * spec.output_elems


def pool_flops(spec: LayerSpec) -> float:
    """|Y| * K * K * c ops; c adjusts for max vs average (§III-C.3)."""
    k = spec.attr("kernel")
    c = 1.0 if spec.kind is LayerKind.POOL_MAX else 2.0  # avg adds the divide
    return spec.output_elems * k * k * c


def batchnorm_flops(spec: LayerSpec) -> float:
    """3|B| + 4|X| + 2|Y| (§III-C.4).

    |B| is the per-channel batch statistic count; per sample we charge the
    per-element normalize (4|X|) and scale/shift (2|Y|) plus the channel
    statistics contribution.
    """
    channels = spec.attr("channels", spec.output_shape[0] if spec.output_shape else 1)
    return 3.0 * channels + 4.0 * spec.input_elems + 2.0 * spec.output_elems


def layernorm_flops(spec: LayerSpec) -> float:
    """Same accounting as batch-norm with per-token statistics."""
    return 3.0 * spec.output_elems / max(1.0, spec.attr("dim", 1.0)) \
        + 4.0 * spec.input_elems + 2.0 * spec.output_elems


def lstm_flops(spec: LayerSpec) -> float:
    """20 * |Y| ops for the gate combination (§III-C.5) plus the 8 GEMM MACs.

    The paper counts the cell-state combination explicitly (20|Y|) and folds
    the input/recurrent projections into the GEMM accounting; we include
    both so an LSTM spec is self-contained: per timestep, 4 gates each do
    (D_in + D_h) * D_h MACs.
    """
    t = spec.attr("steps")
    d_in = spec.attr("input_dim")
    d_h = spec.attr("hidden_dim")
    gemm = 2.0 * 4.0 * (d_in + d_h) * d_h * t
    combine = 20.0 * spec.output_elems
    return gemm + combine


def attention_flops(spec: LayerSpec) -> float:
    """Self-attention with dot-product compatibility (§III-C.6).

    For sequence length T and model dim D (d_k = D / heads):
    QKV projections (3 GEMMs), QK^T scores, softmax, attention-weighted V,
    and the output projection.  The paper's closed form (4 d_k^3 + d_k^2 +
    2 d_k) is per query-key pair; expanded over the sequence this equals the
    accounting below.
    """
    t = spec.attr("seq_len")
    d = spec.attr("dim")
    proj = 2.0 * 3.0 * t * d * d          # Q, K, V projections
    scores = 2.0 * t * t * d              # Q K^T over all heads
    softmax = 2.0 * t * t * spec.attr("heads", 1.0)
    weighted = 2.0 * t * t * d            # scores @ V
    out_proj = 2.0 * t * d * d
    return proj + scores + softmax + weighted + out_proj


def linear_flops(spec: LayerSpec) -> float:
    """|W| = |X| x |Y| MACs -> 2 FLOPs each (§III-C.7)."""
    d_in = spec.attr("in_features")
    d_out = spec.attr("out_features")
    tokens = spec.output_elems / d_out if d_out else 0.0
    return 2.0 * tokens * d_in * d_out


def softmax_flops(spec: LayerSpec) -> float:
    """2|X| operations (§III-C.8)."""
    return 2.0 * spec.input_elems


def embedding_flops(spec: LayerSpec) -> float:
    """A gather: ~1 op per output element (§III-C.9 'simply inferred')."""
    return float(spec.output_elems)


def dropout_flops(spec: LayerSpec) -> float:
    return 2.0 * spec.output_elems  # mask draw + multiply


def add_flops(spec: LayerSpec) -> float:
    return float(spec.output_elems)


def upsample_flops(spec: LayerSpec) -> float:
    """Transposed conv / up-conv costed like a conv on the output grid."""
    k = spec.attr("kernel", 2.0)
    c_in = spec.attr("in_channels")
    return 2.0 * spec.output_elems * k * k * c_in


_DISPATCH = {
    LayerKind.INPUT: lambda s: 0.0,
    LayerKind.CONV2D: conv2d_flops,
    LayerKind.RELU: relu_flops,
    LayerKind.GELU: gelu_flops,
    LayerKind.POOL_MAX: pool_flops,
    LayerKind.POOL_AVG: pool_flops,
    LayerKind.BATCHNORM: batchnorm_flops,
    LayerKind.LAYERNORM: layernorm_flops,
    LayerKind.LSTM: lstm_flops,
    LayerKind.ATTENTION: attention_flops,
    LayerKind.LINEAR: linear_flops,
    LayerKind.SOFTMAX: softmax_flops,
    LayerKind.DROPOUT: dropout_flops,
    LayerKind.EMBEDDING: embedding_flops,
    LayerKind.ADD: add_flops,
    LayerKind.CONCAT: lambda s: float(s.output_elems),
    LayerKind.RESHAPE: lambda s: 0.0,
    LayerKind.UPSAMPLE: upsample_flops,
    LayerKind.LOSS: lambda s: 3.0 * s.input_elems,
}


def forward_flops(spec: LayerSpec, batch_size: int = 1) -> float:
    """Forward-pass FLOPs of one layer for ``batch_size`` samples."""
    try:
        per_sample = _DISPATCH[spec.kind](spec)
    except KeyError as exc:  # pragma: no cover - new kinds must be registered
        raise NotImplementedError(
            f"no FLOP formula for layer kind {spec.kind}") from exc
    return per_sample * batch_size


def backward_flops(spec: LayerSpec, batch_size: int = 1) -> float:
    """Backward-pass FLOPs (forward cost scaled by the kind's factor)."""
    factor = BACKWARD_FACTOR.get(spec.kind, DEFAULT_BACKWARD_FACTOR)
    return forward_flops(spec, batch_size) * factor


def param_count(spec: LayerSpec) -> int:
    """Number of trainable scalars in the layer."""
    kind = spec.kind
    if kind is LayerKind.CONV2D:
        k = int(spec.attr("kernel"))
        c_in = int(spec.attr("in_channels"))
        c_out = int(spec.attr("out_channels"))
        groups = int(spec.attr("groups", 1))
        return k * k * (c_in // groups) * c_out + c_out
    if kind is LayerKind.BATCHNORM:
        return 2 * int(spec.attr("channels"))
    if kind is LayerKind.LAYERNORM:
        return 2 * int(spec.attr("dim"))
    if kind is LayerKind.LINEAR:
        return int(spec.attr("in_features")) * int(spec.attr("out_features")) \
            + int(spec.attr("out_features"))
    if kind is LayerKind.LSTM:
        d_in = int(spec.attr("input_dim"))
        d_h = int(spec.attr("hidden_dim"))
        return 4 * (d_in * d_h + d_h * d_h + d_h)
    if kind is LayerKind.ATTENTION:
        d = int(spec.attr("dim"))
        return 4 * d * d + 4 * d  # QKVO projections + biases
    if kind is LayerKind.EMBEDDING:
        return int(spec.attr("vocab")) * int(spec.attr("dim"))
    if kind is LayerKind.UPSAMPLE:
        k = int(spec.attr("kernel", 2))
        return k * k * int(spec.attr("in_channels")) * int(spec.attr("out_channels"))
    return 0


def graph_forward_flops(graph, batch_size: int = 1) -> float:
    """Total forward FLOPs of a :class:`LayerGraph`."""
    return sum(forward_flops(spec, batch_size) for spec in graph)


def graph_param_count(graph) -> int:
    """Total trainable parameters of a :class:`LayerGraph`."""
    return sum(param_count(spec) for spec in graph)
