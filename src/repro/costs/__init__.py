"""Cost models: analytic FLOPs (§III-C), memory classes (§III-D), profiling."""

from .calibration import (
    OPTIMIZER_SLOTS,
    PROFILED_ACT_FACTOR,
    act_factor_for,
    optimizer_slots_for,
)
from .flops import (
    BACKWARD_FACTOR,
    backward_flops,
    forward_flops,
    graph_forward_flops,
    graph_param_count,
    param_count,
)
from .memory import (
    DTYPE_BYTES,
    BlockMemory,
    LayerMemory,
    block_memory,
    fits_in_core,
    layer_memory,
    max_in_core_batch,
    model_memory_total,
    projected_memory,
)
from .profiler import CostModel, LayerCost, calibration_from_measurements, profile_graph
from .trace_fit import (
    CALIBRATION_SCHEMA_VERSION,
    CalibrationArtifact,
    LinkFit,
    fit_link,
    fit_op_scales,
    fit_trace,
    fit_validation_report,
    merge_artifacts,
)

__all__ = [
    "forward_flops", "backward_flops", "param_count", "BACKWARD_FACTOR",
    "graph_forward_flops", "graph_param_count",
    "DTYPE_BYTES", "LayerMemory", "BlockMemory", "layer_memory",
    "block_memory", "model_memory_total", "fits_in_core",
    "max_in_core_batch", "projected_memory",
    "CostModel", "LayerCost", "profile_graph", "calibration_from_measurements",
    "CALIBRATION_SCHEMA_VERSION", "CalibrationArtifact", "LinkFit",
    "fit_link", "fit_op_scales", "fit_trace", "fit_validation_report",
    "merge_artifacts",
    "PROFILED_ACT_FACTOR", "OPTIMIZER_SLOTS", "act_factor_for",
    "optimizer_slots_for",
]
