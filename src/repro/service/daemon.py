"""The planner daemon: admission control, hot cache tier, single-flight.

``python -m repro plan`` pays the full import-plan-exit cycle per call;
a fleet of examples, benchmarks and schedulers asking for plans turns
that into the dominant cost.  :class:`PlannerDaemon` keeps one process
resident and turns planning into a *service*:

* **admission control** — requests enter a bounded queue; at depth the
  request is shed immediately with a typed
  :class:`~repro.service.errors.QueueFull` (never a hang), and a
  per-request deadline is enforced both while waiting and after being
  queued (:class:`~repro.service.errors.DeadlineExpired`);
* **hot tier** — an in-process LRU of finished plan *records* in front
  of the content-addressed :class:`~repro.cache.plan_cache.PlanCache`
  (which remains the warm, on-disk tier); a hot hit never touches the
  queue;
* **single-flight** — identical concurrent requests collapse onto one
  planner invocation: the first becomes the *leader*, the rest attach as
  *waiters* and share the leader's bit-identical result (classic
  cache-stampede protection);
* **worker budgets** — planner parallelism is carved from one shared
  :class:`~repro.core.solver.WorkerBudget` so a single request cannot
  monopolize the process pool under load.

Requests are served by a small pool of daemon worker threads; the
planner callable itself may fan out into processes (the PR 2 portfolio
pool).  Everything lands in :data:`~repro.obs.metrics.METRICS`
(``service.*`` names) and, when enabled, :data:`~repro.obs.trace.TRACER`
spans — see ``docs/service.md`` for the name tables.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..cache.digest import stable_digest
from ..cache.plan_cache import PlanCache
from ..core.solver import WorkerBudget
from ..obs.flight import FLIGHT
from ..obs.metrics import METRICS
from ..obs.trace import Span, TRACER, TraceContext, span_to_dict
from .cluster import ClusterArbiter, JobDemand, JobPlacement
from .errors import (
    BadRequest,
    DeadlineExpired,
    PlanningFailed,
    QueueFull,
    ServiceClosed,
    ServiceRejection,
    WorkerCrashed,
)

__all__ = ["ServiceConfig", "PlanResponse", "PlannerDaemon", "request_key"]

#: Queue sentinel telling a worker thread to exit.
_STOP = object()

#: The hit tiers a response can report, hottest first.
TIERS = ("hot", "warm", "cold")


def request_key(config: Mapping[str, Any]) -> str:
    """Content address of one planning request.

    ``None``-valued keys are dropped before digesting so a client that
    spells a default explicitly (``{"capacity": None}``) merges with one
    that omits it — single-flight and the hot tier key on *meaning*, not
    spelling.  Everything else flows through the same canonical-JSON
    digest the plan cache uses.
    """
    cleaned = {k: v for k, v in config.items() if v is not None}
    return stable_digest({"service_request": cleaned})


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`PlannerDaemon`.

    Args:
        queue_depth: admission bound; requests beyond it are shed with
            :class:`~repro.service.errors.QueueFull`.
        service_workers: daemon threads consuming the request queue.
        pool_workers: total planner workers shared by all in-flight
            requests (the :class:`~repro.core.solver.WorkerBudget` pool).
        max_workers_per_request: cap on the workers any one request may
            lease from the pool.
        default_deadline_s: deadline applied to requests that do not
            carry their own (``None`` = wait forever).
        hot_capacity: entries kept in the in-process hot LRU tier.
    """

    queue_depth: int = 16
    service_workers: int = 2
    pool_workers: int = 4
    max_workers_per_request: int = 2
    default_deadline_s: Optional[float] = None
    hot_capacity: int = 128

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.service_workers < 1:
            raise ValueError("service_workers must be >= 1")
        if self.pool_workers < 1:
            raise ValueError("pool_workers must be >= 1")
        if self.max_workers_per_request < 1:
            raise ValueError("max_workers_per_request must be >= 1")
        if self.hot_capacity < 1:
            raise ValueError("hot_capacity must be >= 1")


@dataclass(frozen=True)
class PlanResponse:
    """One served plan: the record plus how it was served.

    ``tier`` is where the plan came from (``hot``: in-process LRU,
    ``warm``: on-disk plan cache, ``cold``: freshly planned); ``merged``
    marks a waiter that shared a leader's single-flight result.
    """

    record: Dict[str, Any]
    tier: str
    merged: bool
    wall_s: float
    #: Wire-rendered spans of this request's trace (traced requests
    #: asking for them only); waiters carry the leader's spans too.
    spans: Optional[List[Dict[str, Any]]] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering for the socket protocol."""
        out = {"record": self.record, "tier": self.tier,
               "merged": self.merged, "wall_s": round(self.wall_s, 6)}
        if self.spans is not None:
            out["spans"] = self.spans
        return out


class _Flight:
    """One in-flight planning key: leader's result shared with waiters.

    ``trace_id`` is the leader's trace (empty when untraced); ``spans``
    snapshots the leader's collected spans at resolve time so waiters
    can ship the planning work they merged onto.
    """

    __slots__ = ("key", "event", "response", "error", "waiters",
                 "trace_id", "spans")

    def __init__(self, key: str, trace_id: str = "") -> None:
        self.key = key
        self.event = threading.Event()
        self.response: Optional[PlanResponse] = None
        self.error: Optional[ServiceRejection] = None
        self.waiters = 0
        self.trace_id = trace_id
        self.spans: List[Span] = []


@dataclass
class _Job:
    """One queued unit of work (the leader's side of a flight)."""

    key: str
    config: Dict[str, Any]
    flight: _Flight
    deadline: Optional[float] = None   # monotonic, None = no deadline
    enqueued_at: float = field(default_factory=time.monotonic)
    trace: Optional[TraceContext] = None   # the leader's request trace


#: A planner callable: (config, n_workers) -> plan record.
PlannerFn = Callable[[Dict[str, Any], int], Dict[str, Any]]


class PlannerDaemon:
    """Long-lived planning service over the content-addressed cache.

    Thread-safe: :meth:`request`, :meth:`place`, :meth:`release` and
    :meth:`stats` may be called from any number of client threads (the
    socket server's connection handlers do exactly that).

    Args:
        config: service tunables (:class:`ServiceConfig`).
        cache: the warm tier; ``None`` disables plan caching entirely
            (every non-hot, non-merged request plans cold).
        planner: override for the planning callable — primarily for
            tests; defaults to :func:`repro.cli.plan_config_full`
            against ``cache``.
        cluster: optional :class:`~repro.service.cluster.ClusterArbiter`
            backing :meth:`place`/:meth:`release`.
        chaos: chaos-mode hook, typically a
            :class:`~repro.elastic.faults.ChaosMonkey` — called once per
            dequeued job; ``True`` makes the worker thread "crash": the
            request resolves with a retryable
            :class:`~repro.service.errors.WorkerCrashed` rejection, the
            thread exits, and a replacement worker is respawned.
    """

    def __init__(self, config: Optional[ServiceConfig] = None, *,
                 cache: Optional[PlanCache] = None,
                 planner: Optional[PlannerFn] = None,
                 cluster: Optional[ClusterArbiter] = None,
                 chaos: Optional[Callable[[], bool]] = None) -> None:
        self.config = config or ServiceConfig()
        self.cache = cache
        self.cluster = cluster
        self.chaos = chaos
        self._respawned = 0
        self._planner: PlannerFn = planner or self._default_planner
        self._budget = WorkerBudget(
            self.config.pool_workers,
            per_request_cap=self.config.max_workers_per_request)
        self._queue: "queue.Queue[Any]" = queue.Queue(
            maxsize=self.config.queue_depth)
        self._hot: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._hot_lock = threading.Lock()
        self._flights: Dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._running = False
        self._started_at = 0.0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "PlannerDaemon":
        """Spawn the worker threads and begin admitting requests."""
        with self._state_lock:
            if self._running:
                return self
            self._running = True
            self._started_at = time.monotonic()
            self._threads = [
                threading.Thread(target=self._worker, daemon=True,
                                 name=f"plan-worker-{i}")
                for i in range(self.config.service_workers)]
        for t in self._threads:
            t.start()
        return self

    def stop(self) -> None:
        """Drain the queue, stop the workers, flush cache counters.

        Jobs already admitted are still served; requests arriving after
        ``stop`` raise :class:`~repro.service.errors.ServiceClosed`, and
        any job that raced past the closed check is resolved with the
        same rejection rather than left hanging.
        """
        with self._state_lock:
            if not self._running:
                return
            self._running = False
            threads, self._threads = self._threads, []
        for _ in threads:
            self._queue.put(_STOP)
        for t in threads:
            t.join()
        while True:   # resolve stragglers that raced the closed check
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not _STOP:
                self._resolve(job.flight,
                              error=ServiceClosed("daemon stopped"))
        if self.cache is not None:
            self.cache.flush_session_stats()

    def __enter__(self) -> "PlannerDaemon":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        """Whether the daemon is admitting requests."""
        return self._running

    # -- the request path --------------------------------------------------

    def request(self, config: Mapping[str, Any], *,
                deadline_s: Optional[float] = None,
                trace: Optional[TraceContext] = None,
                collect_spans: bool = False) -> PlanResponse:
        """Serve one planning request (blocking).

        Resolution order: hot LRU hit (no queue), single-flight merge
        onto an identical in-flight request, else admission into the
        bounded queue as a new leader.  Raises the typed rejections from
        :mod:`repro.service.errors`; never hangs past the deadline.

        Args:
            config: the same configuration dict ``python -m repro plan``
                takes (``model``, ``batch``, ``hierarchy``, ...).
            deadline_s: seconds this caller is willing to wait
                (overrides the service default; ``None`` defers to it).
            trace: distributed trace context to serve the request under;
                daemon + pool-worker spans are sampled for it even when
                global tracing is off.  Single-flight waiters keep their
                own trace but inherit the leader's planning spans.
            collect_spans: attach the trace's wire-rendered spans to the
                response (requires ``trace``).
        """
        if not self._running:
            raise ServiceClosed("daemon is not running")
        METRICS.counter("service.requests").inc()
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        deadline = (None if deadline_s is None
                    else time.monotonic() + float(deadline_s))
        key = request_key(config)
        if trace is not None and trace.trace_id:
            with TRACER.collect(trace.trace_id) as collected:
                with TRACER.activate(trace):
                    return self._serve(
                        key, config, deadline, deadline_s, trace,
                        collected if collect_spans else None)
        return self._serve(key, config, deadline, deadline_s, None, None)

    def _serve(self, key: str, config: Mapping[str, Any],
               deadline: Optional[float], deadline_s: Optional[float],
               trace: Optional[TraceContext],
               collected: Optional[List[Span]]) -> PlanResponse:
        """The request path proper (tracing scope set up by ``request``)."""
        t0 = time.perf_counter()
        flight: Optional[_Flight] = None
        with TRACER.span("service.request", "service", track="service",
                         key=key[:16]):
            hot = self._hot_get(key)
            if hot is not None:
                METRICS.counter("service.plans.hot").inc()
                wall = time.perf_counter() - t0
                METRICS.histogram("service.request_seconds").observe(wall)
                resp = PlanResponse(record=hot, tier="hot", merged=False,
                                    wall_s=wall)
            else:
                resp, flight = self._serve_queued(key, config, deadline,
                                                  deadline_s, trace, t0)
        return self._attach_spans(resp, collected,
                                  flight if resp.merged else None)

    def _serve_queued(self, key: str, config: Mapping[str, Any],
                      deadline: Optional[float],
                      deadline_s: Optional[float],
                      trace: Optional[TraceContext],
                      t0: float) -> Tuple[PlanResponse, _Flight]:
        """Queue-or-merge path of :meth:`_serve` (non-hot requests)."""
        flight, leader = self._join_flight(key, trace)
        if leader:
            job = _Job(key=key, config=dict(config), flight=flight,
                       deadline=deadline, trace=trace)
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                with self._flights_lock:
                    self._flights.pop(key, None)
                METRICS.counter("service.rejected.queue_full").inc()
                raise QueueFull(
                    f"admission queue at depth "
                    f"{self.config.queue_depth}; request shed") \
                    from None
            METRICS.gauge("service.queue_depth").add(1)
        t_wait = time.perf_counter()
        remaining = (None if deadline is None
                     else deadline - time.monotonic())
        if not flight.event.wait(timeout=remaining):
            METRICS.counter("service.rejected.deadline").inc()
            raise DeadlineExpired(
                f"deadline of {deadline_s}s expired waiting for plan "
                f"{key[:16]}")
        if flight.error is not None:
            raise flight.error
        served = flight.response
        assert served is not None
        if not leader and trace is not None and flight.trace_id:
            # waiter: a span covering the merged wait, pointing at the
            # leader's trace — the stitched exporter renders it as a
            # single-flight flow arrow
            TRACER.record("service.merged", "service", start=t_wait,
                          end=time.perf_counter(), track="service",
                          key=key[:16], merged_into=flight.trace_id)
        wall = time.perf_counter() - t0
        METRICS.histogram("service.request_seconds").observe(wall)
        return PlanResponse(record=served.record, tier=served.tier,
                            merged=not leader, wall_s=wall), flight

    @staticmethod
    def _attach_spans(resp: PlanResponse, collected: Optional[List[Span]],
                      flight: Optional[_Flight]) -> PlanResponse:
        """Wire-render a traced request's spans onto its response.

        Spans recorded daemon-side carry no ``proc`` label; they are
        stamped ``daemon`` here so the client's stitched export groups
        them into the daemon's process row.  A merged waiter also ships
        the leader's resolved flight spans.
        """
        if collected is None:
            return resp
        spans = list(collected)
        if flight is not None:
            spans.extend(flight.spans)
        wire = []
        for span in spans:
            data = span_to_dict(span)
            if not data["proc"]:
                data["proc"] = "daemon"
            wire.append(data)
        return replace(resp, spans=wire)

    # -- cluster delegation ------------------------------------------------

    def place(self, job_id: str,
              tier_bytes: Mapping[Any, Any]) -> JobPlacement:
        """Place a job on the shared cluster tiers (cluster mode only).

        ``tier_bytes`` maps shared tier index -> bytes (keys may be
        strings, as delivered by the JSON protocol).
        """
        if self.cluster is None:
            raise BadRequest("cluster mode is not enabled on this daemon")
        demand = JobDemand(job_id=str(job_id),
                           tier_bytes={int(t): float(b)
                                       for t, b in tier_bytes.items()})
        return self.cluster.place(demand)

    def release(self, job_id: str) -> JobPlacement:
        """Release a placed job's reservations (cluster mode only)."""
        if self.cluster is None:
            raise BadRequest("cluster mode is not enabled on this daemon")
        return self.cluster.release(job_id)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """JSON-ready service state for the ``stats`` protocol op."""
        snap = METRICS.snapshot()
        out: Dict[str, Any] = {
            "running": self._running,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.config.queue_depth,
            "hot_entries": len(self._hot),
            "hot_capacity": self.config.hot_capacity,
            "workers_free": self._budget.free,
            "pool_workers": self.config.pool_workers,
            "counters": {k: v for k, v in snap["counters"].items()
                         if k.startswith(("service.", "cluster.",
                                          "plan_cache."))},
        }
        if self.cache is not None:
            out["cache"] = {"in_memory": len(self.cache),
                            "hits": self.cache.stats.hits,
                            "misses": self.cache.stats.misses}
        if self.cluster is not None:
            out["cluster"] = self.cluster.snapshot()
        return out

    def telemetry(self) -> Dict[str, Any]:
        """One live telemetry frame for the ``telemetry`` protocol op.

        Unlike :meth:`stats` (a filtered counter view), this carries the
        *full* :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` —
        histograms included, so consumers (``python -m repro top``) can
        render p50/p95/p99 latencies — plus the service gauges.
        """
        out: Dict[str, Any] = {
            "ts": time.time(),
            "uptime_s": (round(time.monotonic() - self._started_at, 3)
                         if self._started_at else 0.0),
            "running": self._running,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.config.queue_depth,
            "hot_entries": len(self._hot),
            "hot_capacity": self.config.hot_capacity,
            "workers_free": self._budget.free,
            "pool_workers": self.config.pool_workers,
            "metrics": METRICS.snapshot(),
        }
        if self.cluster is not None:
            out["cluster"] = self.cluster.snapshot()
        return out

    # -- internals ---------------------------------------------------------

    def _join_flight(self, key: str,
                     trace: Optional[TraceContext] = None
                     ) -> Tuple[_Flight, bool]:
        """Attach to an in-flight plan for ``key``, or lead a new one.

        A new flight adopts the leader's trace id (when traced) so
        waiters can inherit the leader's planning spans at resolve time.
        """
        with self._flights_lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.waiters += 1
                METRICS.counter("service.singleflight_merges").inc()
                return flight, False
            flight = _Flight(key, trace_id=trace.trace_id if trace else "")
            self._flights[key] = flight
            return flight, True

    def _resolve(self, flight: _Flight, *,
                 response: Optional[PlanResponse] = None,
                 error: Optional[ServiceRejection] = None) -> None:
        """Publish a flight's outcome and wake every attached request."""
        if flight.trace_id:
            # snapshot the leader's collected spans before waking anyone:
            # waiters ship these as the planning work they merged onto
            flight.spans = TRACER.peek_collected(flight.trace_id)
        with self._flights_lock:
            self._flights.pop(flight.key, None)
        flight.response = response
        flight.error = error
        flight.event.set()

    def _worker(self) -> None:
        """One daemon thread: drain the queue, plan, resolve flights."""
        while True:
            job = self._queue.get()
            try:
                if job is _STOP:
                    return
                METRICS.gauge("service.queue_depth").add(-1)
                METRICS.histogram("service.latency.queue").observe(
                    max(0.0, time.monotonic() - job.enqueued_at))
                if job.deadline is not None \
                        and time.monotonic() > job.deadline:
                    METRICS.counter("service.rejected.deadline").inc()
                    self._resolve(job.flight, error=DeadlineExpired(
                        f"deadline expired while plan {job.key[:16]} "
                        "was queued"))
                    continue
                if self.chaos is not None and self.chaos():
                    # chaos mode: this worker "crashes" mid-plan — the
                    # flight resolves with a retryable rejection instead
                    # of hanging its waiters, and a fresh worker replaces
                    # this thread before it exits
                    worker_name = threading.current_thread().name
                    METRICS.counter("service.worker_crashes").inc()
                    FLIGHT.note("worker_crashed", worker=worker_name,
                                key=job.key[:16])
                    FLIGHT.dump("worker_crashed",
                                detail={"worker": worker_name,
                                        "key": job.key[:16]})
                    self._resolve(job.flight, error=WorkerCrashed(
                        f"worker {worker_name} "
                        f"crashed while serving plan {job.key[:16]}; "
                        "retry against the respawned worker"))
                    self._respawn()
                    return
                try:
                    with TRACER.activate(job.trace):
                        t_plan = time.perf_counter()
                        with TRACER.span("service.plan", "service",
                                         key=job.key[:16]):
                            with self._budget.lease(
                                    self.config.max_workers_per_request
                                    ) as n:
                                record = self._planner(job.config, n)
                        METRICS.histogram("service.latency.plan").observe(
                            time.perf_counter() - t_plan)
                    tier = ("warm" if record.get("cache") == "hit"
                            else "cold")
                    self._hot_insert(job.key, record)
                    METRICS.counter(f"service.plans.{tier}").inc()
                    self._resolve(job.flight, response=PlanResponse(
                        record=record, tier=tier, merged=False,
                        wall_s=0.0))
                except ServiceRejection as exc:
                    self._resolve(job.flight, error=exc)
                except Exception as exc:  # noqa: BLE001 - typed to client
                    METRICS.counter("service.plan_failures").inc()
                    self._resolve(job.flight, error=PlanningFailed(
                        f"{type(exc).__name__}: {exc}"))
            finally:
                self._queue.task_done()

    def _respawn(self) -> None:
        """Replace a crashed worker thread (no-op once stopping).

        Runs under ``_state_lock`` so it cannot race :meth:`stop`: either
        the replacement lands in ``_threads`` before stop snapshots the
        list (and receives its own ``_STOP``), or the daemon is already
        stopping and no replacement is spawned.
        """
        with self._state_lock:
            if not self._running:
                return
            self._respawned += 1
            thread = threading.Thread(
                target=self._worker, daemon=True,
                name=f"plan-worker-respawn-{self._respawned}")
            self._threads.append(thread)
        thread.start()
        METRICS.counter("service.workers_respawned").inc()

    def _default_planner(self, config: Dict[str, Any],
                         n_workers: int) -> Dict[str, Any]:
        """Plan through the CLI's service entry against our cache tier."""
        from ..cli import plan_config_full

        record, _ = plan_config_full(config, use_cache=self.cache is not None,
                                     n_workers=n_workers, cache=self.cache)
        return record

    def _hot_get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._hot_lock:
            record = self._hot.get(key)
            if record is not None:
                self._hot.move_to_end(key)
                METRICS.counter("service.hot_hits").inc()
            return record

    def _hot_insert(self, key: str, record: Dict[str, Any]) -> None:
        with self._hot_lock:
            self._hot[key] = record
            self._hot.move_to_end(key)
            while len(self._hot) > self.config.hot_capacity:
                self._hot.popitem(last=False)
                METRICS.counter("service.hot_evictions").inc()
