"""Client for the planner daemon's newline-JSON socket protocol.

The CLI's ``plan --server`` path and the CI smoke test go through
:class:`PlannerClient`; it is also the reference implementation for the
protocol documented in :mod:`repro.service.server`.  Error replies are
re-raised as the same typed rejections an in-process caller of
:class:`~repro.service.daemon.PlannerDaemon` would catch
(:func:`~repro.service.errors.rejection_for` maps the wire code back to
the class), so switching a caller between in-process and remote planning
changes no exception handling.
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Dict, Iterator, Mapping, Optional

from ..obs.metrics import METRICS
from ..obs.trace import TraceContext
from .errors import ServiceRejection, rejection_for
from .server import Address

__all__ = ["PlannerClient", "wait_for_server"]


class PlannerClient:
    """One connection to a running planner daemon.

    Args:
        address: unix-socket path or ``(host, port)`` tuple (the same
            :data:`~repro.service.server.Address` the server binds).
        timeout: socket timeout in seconds for connect and each reply
            (``None`` = block forever; per-request planning deadlines
            are the ``deadline_s`` arguments, not this).
    """

    def __init__(self, address: Address,
                 timeout: Optional[float] = None) -> None:
        self.address = address
        self.timeout = timeout
        self._connect()

    def _connect(self) -> None:
        if isinstance(self.address, str):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.settimeout(self.timeout)
        self._sock.connect(self.address)
        self._rfile = self._sock.makefile("rb")

    def _reconnect(self) -> None:
        """Drop the (possibly dead) connection and dial again."""
        self.close()
        self._connect()

    # -- protocol ----------------------------------------------------------

    def call(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request line and decode the reply.

        Raises the typed :class:`~repro.service.errors.ServiceRejection`
        subclass matching the server's error code on failure replies.
        """
        request = {"op": op, **fields}
        self._sock.sendall(
            (json.dumps(request, sort_keys=True) + "\n").encode("utf-8"))
        raw = self._rfile.readline()
        if not raw:
            raise ServiceRejection(
                f"server closed the connection during {op!r}")
        reply = json.loads(raw.decode("utf-8"))
        if not isinstance(reply, dict):
            raise ServiceRejection(f"malformed reply to {op!r}: {reply!r}")
        if not reply.get("ok"):
            err = reply.get("error") or {}
            raise rejection_for(str(err.get("code", "rejected")),
                                str(err.get("message", "request rejected")))
        return reply

    # -- ops ---------------------------------------------------------------

    def ping(self) -> bool:
        """True when the daemon behind the socket is admitting requests."""
        return bool(self.call("ping").get("running"))

    def plan(self, config: Mapping[str, Any], *,
             deadline_s: Optional[float] = None,
             trace: Optional[TraceContext] = None,
             collect_spans: bool = False,
             retries: int = 0, backoff_s: float = 0.05,
             backoff_factor: float = 2.0, backoff_max_s: float = 2.0,
             jitter: float = 0.25) -> Dict[str, Any]:
        """Request one plan; returns the served response dict.

        The reply carries ``record`` (the plan record ``python -m repro
        plan --json`` would print), ``tier`` (hot/warm/cold) and
        ``merged`` (single-flight waiter).

        Args:
            config: the planning request.
            deadline_s: per-request deadline forwarded to the daemon.
            trace: distributed trace context for this request; the
                daemon samples its spans under this trace id.
            collect_spans: ask the daemon to attach the trace's spans to
                the reply (``spans`` field, wire dicts for
                :func:`~repro.obs.trace.span_from_dict`); needs
                ``trace``.
            retries: extra attempts after a *retryable* rejection (a
                shed request, a chaos-crashed worker) or a dropped
                connection; deterministic rejections (bad request,
                planning failure) are never retried.
            backoff_s / backoff_factor / backoff_max_s / jitter:
                exponential-backoff shape between attempts
                (``backoff_s * factor^n``, capped, +/- ``jitter``
                fraction of uniform noise).
        """
        fields: Dict[str, Any] = {"config": dict(config)}
        if deadline_s is not None:
            fields["deadline_s"] = float(deadline_s)
        if trace is not None:
            fields["trace"] = trace.to_dict()
            if collect_spans:
                fields["collect_spans"] = True
        delay = backoff_s
        for attempt in range(retries + 1):
            try:
                reply = self.call("plan", **fields)
                reply.pop("ok", None)
                return reply
            except (ServiceRejection, OSError) as exc:
                retryable = (isinstance(exc, OSError)
                             or getattr(exc, "retryable", False))
                if not retryable or attempt >= retries:
                    raise
                METRICS.counter("service.client_retries").inc()
                time.sleep(min(delay, backoff_max_s)
                           * (1.0 + random.uniform(-jitter, jitter)))
                delay *= backoff_factor
                if isinstance(exc, OSError):
                    self._reconnect()
        raise AssertionError("unreachable")  # loop always returns/raises

    def place(self, job_id: str,
              tier_bytes: Mapping[Any, Any]) -> Dict[str, Any]:
        """Place a job on the daemon's cluster; returns the placement."""
        reply = self.call("place", job_id=job_id,
                          tier_bytes={str(t): float(b)
                                      for t, b in tier_bytes.items()})
        return reply["placement"]

    def release(self, job_id: str) -> Dict[str, Any]:
        """Release a placed job; returns the placement that was freed."""
        return self.call("release", job_id=job_id)["placement"]

    def stats(self) -> Dict[str, Any]:
        """The daemon's JSON stats snapshot (queue, tiers, counters)."""
        return self.call("stats")["stats"]

    def telemetry(self, *, count: int = 1,
                  interval_s: float = 1.0) -> Iterator[Dict[str, Any]]:
        """Stream ``count`` live telemetry frames from the daemon.

        Yields one frame dict (queue/budget gauges + the full metrics
        snapshot, see :meth:`PlannerDaemon.telemetry
        <repro.service.daemon.PlannerDaemon.telemetry>`) every
        ``interval_s`` seconds; ``python -m repro top`` renders these.
        The stream may end early if the server starts shutting down.
        """
        request = {"op": "telemetry", "count": int(count),
                   "interval_s": float(interval_s)}
        self._sock.sendall(
            (json.dumps(request, sort_keys=True) + "\n").encode("utf-8"))
        for _ in range(int(count)):
            raw = self._rfile.readline()
            if not raw:
                return
            reply = json.loads(raw.decode("utf-8"))
            if not isinstance(reply, dict) or not reply.get("ok"):
                err = (reply or {}).get("error") or {}
                raise rejection_for(
                    str(err.get("code", "rejected")),
                    str(err.get("message", "telemetry rejected")))
            yield reply["telemetry"]

    def dump(self, *, write: bool = False) -> Dict[str, Any]:
        """Fetch the daemon's flight-recorder snapshot (``dump`` op).

        With ``write=True`` the daemon also persists a dump artifact and
        the reply carries its ``path``.
        """
        reply = self.call("dump", write=bool(write))
        out = {"flight": reply["flight"]}
        if "path" in reply:
            out["path"] = reply["path"]
        return out

    def shutdown(self) -> None:
        """Ask the server to stop accepting connections."""
        self.call("shutdown")

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "PlannerClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def wait_for_server(address: Address, *, timeout: float = 10.0,
                    interval: float = 0.05, backoff_factor: float = 1.5,
                    max_interval: float = 1.0,
                    jitter: float = 0.2) -> bool:
    """Poll until a daemon answers ``ping`` at ``address``.

    Returns True once the server responds, False when ``timeout``
    elapses first — the CI smoke test uses this to sequence a
    just-forked daemon and its first client without sleeps.  Polling
    backs off exponentially (``interval * backoff_factor^n``, capped at
    ``max_interval``) with +/- ``jitter`` fraction of uniform noise, so
    many clients racing one slow daemon don't synchronize into poll
    bursts the way a fixed interval does.
    """
    deadline = time.monotonic() + timeout
    delay = interval
    while time.monotonic() < deadline:
        try:
            with PlannerClient(address, timeout=max(0.5, delay * 10)) \
                    as client:
                client.ping()
                return True
        except (OSError, ServiceRejection, json.JSONDecodeError):
            remaining = deadline - time.monotonic()
            sleep = delay * (1.0 + random.uniform(-jitter, jitter))
            if remaining <= 0:
                break
            time.sleep(min(sleep, max(0.0, remaining)))
            delay = min(delay * backoff_factor, max_interval)
    return False
