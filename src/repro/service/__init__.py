"""Multi-tenant planning service: daemon, cluster arbitration, protocol.

The planner-as-a-service layer over the KARMA pipeline: a long-lived
:class:`~repro.service.daemon.PlannerDaemon` with admission control, an
in-process hot LRU tier over the content-addressed plan cache, and
single-flight stampede protection; a collocation-aware
:class:`~repro.service.cluster.ClusterArbiter` placing admitted jobs on
one shared memory hierarchy; and a newline-JSON socket protocol
(:mod:`~repro.service.server` / :mod:`~repro.service.client`) behind
``python -m repro serve``.  See ``docs/service.md`` for the request
lifecycle, knobs and metric names.
"""

from .cluster import (
    ClusterArbiter,
    JobDemand,
    JobPlacement,
    demand_from_record,
    place_jobs,
)
from .daemon import PlanResponse, PlannerDaemon, ServiceConfig, request_key
from .errors import (
    BadRequest,
    DeadlineExpired,
    PlacementDenied,
    PlanningFailed,
    QueueFull,
    ServiceClosed,
    ServiceRejection,
    rejection_for,
)

__all__ = [
    "PlannerDaemon",
    "ServiceConfig",
    "PlanResponse",
    "request_key",
    "ClusterArbiter",
    "JobDemand",
    "JobPlacement",
    "demand_from_record",
    "place_jobs",
    "ServiceRejection",
    "QueueFull",
    "DeadlineExpired",
    "ServiceClosed",
    "PlanningFailed",
    "PlacementDenied",
    "BadRequest",
    "rejection_for",
]
