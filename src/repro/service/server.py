"""Newline-delimited JSON protocol server in front of the planner daemon.

One daemon process serves many clients over a unix socket (default; no
network surface) or localhost TCP.  The protocol is deliberately dumb —
one JSON object per line in, one per line out — so a shell one-liner,
the bundled :mod:`repro.service.client`, or a scheduler in another
language can all speak it:

Request::

    {"op": "plan", "config": {"model": "unet", "batch": 8}}

Response::

    {"ok": true, "record": {...}, "tier": "hot", "merged": false, ...}
    {"ok": false, "error": {"code": "queue_full", "message": "..."}}

Ops: ``ping``, ``plan``, ``place``, ``release``, ``stats``,
``telemetry``, ``dump``, ``shutdown``.  Rejections cross the wire as
their stable ``code`` (:mod:`repro.service.errors`) and are re-raised as
the matching typed exception by the client, so remote callers and
in-process callers catch the same classes.  Each connection is handled
on its own thread; the daemon underneath is the concurrency boundary.

Two distributed-observability extensions ride on the same line
protocol: a ``plan`` request may carry a ``trace`` context (its reply
then ships the daemon/worker spans for that trace — see
``docs/observability.md``), and ``telemetry`` replies with *several*
lines, one full metrics frame every ``interval_s`` seconds for
``count`` frames (the one op that streams).
"""

from __future__ import annotations

import json
import os
import socketserver
import threading
import time
from typing import (
    Any,
    Dict,
    Iterator,
    Optional,
    Tuple,
    Union,
    cast,
)

from ..obs.flight import FLIGHT
from ..obs.metrics import METRICS
from ..obs.trace import TraceContext
from .daemon import PlannerDaemon
from .errors import BadRequest, ServiceRejection

__all__ = ["Address", "parse_address", "PlannerServer"]

#: A unix-socket path, or a ``(host, port)`` localhost TCP endpoint.
Address = Union[str, Tuple[str, int]]


def parse_address(spec: str) -> Address:
    """Parse a CLI address spec into an :data:`Address`.

    ``"1234"`` and ``"host:1234"`` mean TCP (bare ports bind loopback);
    anything else is a unix-socket path.
    """
    spec = spec.strip()
    if spec.isdigit():
        return ("127.0.0.1", int(spec))
    host, sep, port = spec.rpartition(":")
    if sep and port.isdigit() and "/" not in host:
        return (host or "127.0.0.1", int(port))
    return spec


class _ServerState:
    """Class-level contract the request handler reads off ``self.server``."""

    planner_server: "PlannerServer"
    daemon_threads = True
    allow_reuse_address = True


class _ThreadingUnixServer(_ServerState, socketserver.ThreadingMixIn,
                           socketserver.UnixStreamServer):
    """Thread-per-connection unix-socket server (the default transport)."""


class _ThreadingTCPServer(_ServerState, socketserver.ThreadingMixIn,
                          socketserver.TCPServer):
    """Thread-per-connection loopback TCP server."""


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read JSON lines, write JSON replies, until EOF."""

    def handle(self) -> None:
        """Dispatch every line on this connection through the daemon."""
        server = cast(_ServerState, self.server).planner_server
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            reply = server.handle_request(line.decode("utf-8",
                                                      errors="replace"))
            if isinstance(reply, str):
                reply = iter((reply,))
            for chunk in reply:   # streaming ops flush one line per frame
                self.wfile.write((chunk + "\n").encode("utf-8"))
                self.wfile.flush()


class PlannerServer:
    """Bind a :class:`~repro.service.daemon.PlannerDaemon` to a socket.

    The server owns only the transport; the daemon's lifecycle belongs
    to the caller (the CLI starts the daemon, serves, then stops it).
    Use :meth:`serve_forever` in the foreground (the CLI) or
    :meth:`start` for a background thread (tests).
    """

    def __init__(self, daemon: PlannerDaemon, address: Address) -> None:
        self.daemon = daemon
        self.address = address
        self._server: Optional[socketserver.BaseServer] = None
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._active = 0
        self._active_cond = threading.Condition()

    # -- lifecycle ---------------------------------------------------------

    def bind(self) -> "PlannerServer":
        """Create and bind the underlying socket server (idempotent)."""
        if self._server is not None:
            return self
        if isinstance(self.address, str):
            if os.path.exists(self.address):
                os.unlink(self.address)   # stale socket from a dead daemon
            srv: socketserver.BaseServer = _ThreadingUnixServer(
                self.address, _Handler)
        else:
            srv = _ThreadingTCPServer(self.address, _Handler)
        cast(_ServerState, srv).planner_server = self
        self._server = srv
        return self

    def start(self) -> "PlannerServer":
        """Bind and serve on a background thread (for tests/embedding)."""
        self.bind()
        assert self._server is not None
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True,
            name="planner-server")
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Bind and serve on the calling thread until :meth:`stop`.

        An unexpected death of the serve loop dumps the flight recorder
        (the postmortem for "the daemon just vanished") before
        re-raising; Ctrl-C counts as a requested stop, not a crash.
        """
        self.bind()
        assert self._server is not None
        try:
            self._server.serve_forever()
        except KeyboardInterrupt:
            raise
        except BaseException as exc:
            FLIGHT.dump("daemon_crash",
                        detail={"error": f"{type(exc).__name__}: {exc}"})
            raise

    @property
    def active_requests(self) -> int:
        """Requests currently inside :meth:`handle_request`."""
        with self._active_cond:
            return self._active

    def stop(self, drain_s: float = 5.0) -> None:
        """Stop accepting connections, drain in-flight requests, close.

        A graceful shutdown: the serve loop stops first (no new
        connections), then requests already inside
        :meth:`handle_request` get up to ``drain_s`` seconds to finish
        and flush their replies before the listening socket closes.
        Requests still running after the window are abandoned (counted
        in ``service.drain_timeouts``); ``drain_s=0`` restores the old
        immediate-close behaviour.
        """
        srv = self._server
        if srv is None:
            return
        srv.shutdown()
        deadline = time.monotonic() + max(0.0, drain_s)
        with self._active_cond:
            while self._active:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    METRICS.counter("service.drain_timeouts").inc()
                    break
                self._active_cond.wait(remaining)
        srv.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if isinstance(self.address, str) and os.path.exists(self.address):
            os.unlink(self.address)
        self._server = None

    def __enter__(self) -> "PlannerServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- protocol ----------------------------------------------------------

    def handle_request(self, line: str) -> "str | Iterator[str]":
        """Serve one protocol line; returns one JSON reply line, or (for
        the streaming ``telemetry`` op) an iterator of reply lines.

        Tracked in the in-flight counter so :meth:`stop` can drain
        running requests before closing the socket; a streaming reply
        stays counted until its iterator is exhausted or closed.
        """
        with self._active_cond:
            self._active += 1
        streaming = False
        try:
            result = self._handle_line(line)
            if isinstance(result, str):
                return result
            streaming = True
            return self._guard_stream(result)
        finally:
            if not streaming:
                with self._active_cond:
                    self._active -= 1
                    self._active_cond.notify_all()

    def _guard_stream(self, chunks: Iterator[str]) -> Iterator[str]:
        """Keep a streaming reply inside the in-flight counter."""
        try:
            yield from chunks
        finally:
            with self._active_cond:
                self._active -= 1
                self._active_cond.notify_all()

    def _handle_line(self, line: str) -> "str | Iterator[str]":
        try:
            msg = json.loads(line)
        except json.JSONDecodeError as exc:
            return self._error(BadRequest(f"request is not JSON: {exc}"))
        if not isinstance(msg, dict):
            return self._error(BadRequest("request must be a JSON object"))
        op = msg.get("op")
        try:
            result = self._dispatch(op, msg)
            if isinstance(result, dict):
                return json.dumps(result, sort_keys=True)
            return result
        except ServiceRejection as exc:
            return self._error(exc)
        except Exception as exc:  # noqa: BLE001 - typed over the wire
            return self._error(ServiceRejection(
                f"{type(exc).__name__}: {exc}"))

    def _dispatch(self, op: Any, msg: Dict[str, Any]
                  ) -> "Dict[str, Any] | Iterator[str]":
        """Route one decoded request to the daemon; returns the reply
        object (or an iterator of reply lines for streaming ops)."""
        if op == "ping":
            return {"ok": True, "pong": True,
                    "running": self.daemon.running}
        if op == "plan":
            config = msg.get("config")
            if not isinstance(config, dict) or "model" not in config:
                raise BadRequest(
                    "plan needs a config object with at least 'model'")
            wire_trace = msg.get("trace")
            trace = (TraceContext.from_dict(wire_trace)
                     if isinstance(wire_trace, dict) else None)
            resp = self.daemon.request(
                config, deadline_s=msg.get("deadline_s"), trace=trace,
                collect_spans=bool(msg.get("collect_spans"))
                and trace is not None)
            return {"ok": True, **resp.to_dict()}
        if op == "telemetry":
            count = int(msg.get("count", 1))
            interval_s = float(msg.get("interval_s", 1.0))
            if count < 1:
                raise BadRequest("telemetry count must be >= 1")
            if interval_s < 0:
                raise BadRequest("telemetry interval_s must be >= 0")
            return self._telemetry_stream(count, interval_s)
        if op == "dump":
            reply: Dict[str, Any] = {"ok": True,
                                     "flight": FLIGHT.snapshot("on_demand")}
            if msg.get("write"):
                reply["path"] = str(FLIGHT.dump("on_demand"))
            return reply
        if op == "place":
            job_id = msg.get("job_id")
            if not job_id:
                raise BadRequest("place needs a job_id")
            placement = self.daemon.place(str(job_id),
                                          msg.get("tier_bytes") or {})
            return {"ok": True, "placement": placement.to_dict()}
        if op == "release":
            job_id = msg.get("job_id")
            if not job_id:
                raise BadRequest("release needs a job_id")
            placement = self.daemon.release(str(job_id))
            return {"ok": True, "placement": placement.to_dict()}
        if op == "stats":
            return {"ok": True, "stats": self.daemon.stats()}
        if op == "shutdown":
            self._schedule_shutdown()
            return {"ok": True, "stopping": True}
        raise BadRequest(f"unknown op {op!r}; known: ping, plan, place, "
                         "release, stats, telemetry, dump, shutdown")

    # -- internals ---------------------------------------------------------

    def _telemetry_stream(self, count: int,
                          interval_s: float) -> Iterator[str]:
        """Yield ``count`` telemetry frames, one per ``interval_s``.

        Ends early when the server starts shutting down so a slow
        stream never holds the drain window hostage.
        """
        for seq in range(count):
            frame = {"ok": True, "seq": seq, "of": count,
                     "telemetry": self.daemon.telemetry()}
            yield json.dumps(frame, sort_keys=True)
            if seq + 1 < count and self._stopping.wait(interval_s):
                break

    def _error(self, exc: ServiceRejection) -> str:
        """Serialize a typed rejection as the protocol's error reply."""
        return json.dumps(
            {"ok": False,
             "error": {"code": exc.code, "message": str(exc)}},
            sort_keys=True)

    def _schedule_shutdown(self) -> None:
        """Stop the server from a handler thread, after the reply flushes.

        ``BaseServer.shutdown`` must not run on the serving thread and
        would otherwise race the reply write, so a short-lived helper
        thread performs the actual stop.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        threading.Thread(target=self.stop, daemon=True,
                         name="planner-server-shutdown").start()
