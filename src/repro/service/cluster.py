"""Collocation-aware cluster placement over one shared memory hierarchy.

CARMA (PAPERS.md) observes that deep-learning jobs packed onto shared
hardware interfere through the *memory* system long before they exhaust
compute, and argues for collocation decisions made by a resource manager
that sees every job's footprint; ZeRO-Infinity makes the complementary
point that per-job capacity decisions are wrong when taken in isolation
from the fleet.  This module is the service-side synthesis: N admitted
planning jobs are placed onto one shared HBM/DRAM/NVMe hierarchy
(:class:`~repro.hardware.tiering.MemoryHierarchy`), where

* each job occupies one **device slot** (its HBM working set is private)
  and *collocates* on the shared tiers below — its planned per-tier stash
  bytes are **debited** from per-tier reservations at placement and
  **credited** back at release;
* a tier under pressure **spills** the overflow one tier down (DRAM
  pressure pushes stash bytes to NVMe), priced with the hierarchy's own
  link model as an estimated per-iteration round-trip penalty;
* a job whose demand cannot fit even after spilling past the last tier —
  or that finds no free device — is **denied** with a typed
  :class:`~repro.service.errors.PlacementDenied`, leaving every
  reservation untouched (placement is atomic: all tiers or none).

The arbiter is deliberately mechanism, not policy: admission ordering is
the daemon's queue, and per-job demands come from the planner's own tier
placement (``tier_bytes`` in the plan record), so the same content-
addressed plans that serve single clients also drive fleet arbitration.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping

from ..hardware.tiering import DEVICE_TIER, MemoryHierarchy
from ..obs.metrics import METRICS
from ..obs.trace import TRACER
from .errors import BadRequest, PlacementDenied

__all__ = ["JobDemand", "JobPlacement", "ClusterArbiter",
           "DEFAULT_UTILIZATION", "demand_from_record", "place_jobs"]

#: Fraction of each shared tier's capacity jobs may collectively claim;
#: the rest is headroom for host/OS state the arbiter cannot see
#: (mirrors the planner-side default in :mod:`repro.tiering.placement`).
DEFAULT_UTILIZATION = 0.9

#: Reservations below this many bytes are treated as satisfied (guards
#: float round-off in the cascade arithmetic, never real capacity).
_EPSILON_BYTES = 1e-6


@dataclass(frozen=True)
class JobDemand:
    """Per-tier stash bytes one admitted job asks to collocate.

    ``tier_bytes`` maps *shared* tier indices (>= 1: DRAM, NVMe, ...) to
    the bytes the job's plan places there; the device tier is implied by
    the device slot the job occupies.  The daemon derives demands from
    the ``tier_bytes`` field of plan records, but hand-built demands are
    equally valid (capacity what-ifs, admission simulations).
    """

    job_id: str
    tier_bytes: Mapping[int, float]

    def total_bytes(self) -> float:
        """Sum of the demanded bytes across all shared tiers."""
        return float(sum(self.tier_bytes.values()))


@dataclass(frozen=True)
class JobPlacement:
    """One job's committed placement on the shared hierarchy."""

    job_id: str
    device: int                     # the device slot the job occupies
    reserved: Dict[int, float]      # tier -> bytes actually reserved
    spilled: Dict[int, float]       # source tier -> bytes pushed down
    spill_penalty_s: float          # est. per-iteration round-trip cost

    @property
    def spilled_bytes(self) -> float:
        """Total bytes that landed below the tier the plan asked for."""
        return float(sum(self.spilled.values()))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready rendering for the socket protocol and the CLI."""
        return {
            "job_id": self.job_id,
            "device": self.device,
            "reserved": {str(t): b for t, b in sorted(self.reserved.items())},
            "spilled": {str(t): b for t, b in sorted(self.spilled.items())},
            "spill_penalty_s": round(self.spill_penalty_s, 9),
        }


class ClusterArbiter:
    """Capacity arbitration for N jobs collocated on one tier hierarchy.

    Thread-safe: the daemon's worker and connection threads place and
    release concurrently; each operation commits (or denies) atomically
    under one lock.

    Args:
        hierarchy: the shared tier stack; tier 0 (HBM) is per-device,
            tiers >= 1 (DRAM, NVMe, ...) are collocation-shared.
        n_devices: device slots available for placement.
        utilization: fraction of each shared tier jobs may claim.
    """

    def __init__(self, hierarchy: MemoryHierarchy, *, n_devices: int = 4,
                 utilization: float = DEFAULT_UTILIZATION) -> None:
        if n_devices < 1:
            raise ValueError("cluster needs at least one device slot")
        if not 0.0 < utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")
        if hierarchy.depth < 2:
            raise ValueError("cluster arbitration needs at least one "
                             "shared tier below the device")
        self.hierarchy = hierarchy
        self.n_devices = int(n_devices)
        self.utilization = float(utilization)
        self._shared = tuple(range(DEVICE_TIER + 1, hierarchy.depth))
        self._budgets = {t: hierarchy.tier(t).capacity * self.utilization
                         for t in self._shared}
        self._reserved = {t: 0.0 for t in self._shared}
        self._free_devices = list(range(self.n_devices))
        self._jobs: Dict[str, JobPlacement] = {}
        self._lock = threading.Lock()

    # -- placement ---------------------------------------------------------

    def place(self, demand: JobDemand) -> JobPlacement:
        """Place one job, debiting per-tier reservations.

        The demand cascades down the shared tiers: whatever a tier cannot
        hold (its budget minus current reservations) spills to the next
        tier down; overflow past the last tier, or the absence of a free
        device slot, denies the placement with
        :class:`~repro.service.errors.PlacementDenied` and leaves all
        reservations untouched.

        Returns:
            The committed :class:`JobPlacement` (device slot, per-tier
            reservations, spills and the estimated spill penalty).
        """
        bad = [t for t in demand.tier_bytes
               if t not in self._shared or demand.tier_bytes[t] < 0]
        if bad:
            raise BadRequest(f"job {demand.job_id!r}: demand names "
                             f"non-shared or negative tiers {sorted(bad)}; "
                             f"shared tiers are {list(self._shared)}")
        with self._lock, TRACER.span("cluster.place", "service",
                                     job=demand.job_id):
            if demand.job_id in self._jobs:
                raise BadRequest(f"job {demand.job_id!r} is already placed")
            if not self._free_devices:
                METRICS.counter("cluster.denials").inc()
                raise PlacementDenied(
                    f"job {demand.job_id!r}: no free device "
                    f"({self.n_devices} slot(s), all busy)")
            reserved: Dict[int, float] = {}
            spilled: Dict[int, float] = {}
            carry = 0.0
            for t in self._shared:
                want = float(demand.tier_bytes.get(t, 0.0)) + carry
                free = self._budgets[t] - self._reserved[t]
                take = min(want, max(0.0, free))
                reserved[t] = take
                carry = want - take
                if carry > _EPSILON_BYTES and t < self._shared[-1]:
                    spilled[t] = carry
            if carry > _EPSILON_BYTES:
                METRICS.counter("cluster.denials").inc()
                raise PlacementDenied(
                    f"job {demand.job_id!r}: {carry / 2 ** 20:.1f} MiB "
                    f"overflow past tier {self._shared[-1]} "
                    f"({self.hierarchy.tier(self._shared[-1]).name}); "
                    "release a collocated job or shrink the demand")
            # commit: debit every tier, take the lowest free device slot
            device = self._free_devices.pop(0)
            for t, nbytes in reserved.items():
                self._reserved[t] += nbytes
            placement = JobPlacement(
                job_id=demand.job_id, device=device, reserved=reserved,
                spilled=spilled,
                spill_penalty_s=self._spill_penalty(spilled))
            self._jobs[demand.job_id] = placement
            self._publish()
            METRICS.counter("cluster.placements").inc()
            if spilled:
                METRICS.counter("cluster.spilled_bytes").inc(
                    placement.spilled_bytes)
            return placement

    def release(self, job_id: str) -> JobPlacement:
        """Release a placed job, crediting its reservations back.

        Returns the placement that was released; unknown job ids raise
        :class:`~repro.service.errors.BadRequest`.
        """
        with self._lock:
            placement = self._jobs.pop(job_id, None)
            if placement is None:
                raise BadRequest(f"job {job_id!r} is not placed "
                                 f"(placed: {sorted(self._jobs)})")
            for t, nbytes in placement.reserved.items():
                self._reserved[t] = max(0.0, self._reserved[t] - nbytes)
            self._free_devices.append(placement.device)
            self._free_devices.sort()
            self._publish()
            METRICS.counter("cluster.releases").inc()
            return placement

    # -- reporting ---------------------------------------------------------

    def utilization_by_tier(self) -> Dict[int, float]:
        """Reserved fraction of each shared tier's budget (0..1)."""
        with self._lock:
            return {t: (self._reserved[t] / self._budgets[t]
                        if self._budgets[t] else 0.0)
                    for t in self._shared}

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready cluster state for the ``stats`` protocol op."""
        with self._lock:
            return {
                "devices_total": self.n_devices,
                "devices_free": len(self._free_devices),
                "jobs": sorted(self._jobs),
                "tiers": {
                    str(t): {
                        "name": self.hierarchy.tier(t).name,
                        "budget_bytes": self._budgets[t],
                        "reserved_bytes": self._reserved[t],
                        "utilization": (self._reserved[t] / self._budgets[t]
                                        if self._budgets[t] else 0.0),
                    }
                    for t in self._shared
                },
            }

    def describe(self) -> str:
        """Human-readable one-liner-per-tier summary of the cluster."""
        snap = self.snapshot()
        lines = [f"cluster: {snap['devices_free']}/{snap['devices_total']} "
                 f"device slot(s) free, {len(snap['jobs'])} job(s) placed"]
        for t, row in sorted(snap["tiers"].items(), key=lambda kv: kv[0]):
            lines.append(
                f"  tier {t} ({row['name']}): "
                f"{row['reserved_bytes'] / 2 ** 20:.1f} / "
                f"{row['budget_bytes'] / 2 ** 20:.1f} MiB reserved "
                f"({row['utilization'] * 100:.0f}%)")
        return "\n".join(lines)

    # -- internals ---------------------------------------------------------

    def _spill_penalty(self, spilled: Mapping[int, float]) -> float:
        """Estimated extra seconds per iteration the spills cost.

        Each spilled byte crosses one extra hop down at swap-out and back
        up at swap-in, so the penalty is the round-trip transfer time of
        the spilled volume over each pressured tier's lower link.
        """
        penalty = 0.0
        for t, nbytes in spilled.items():
            penalty += self.hierarchy.transfer_time(nbytes, t, t + 1)
            penalty += self.hierarchy.transfer_time(nbytes, t + 1, t)
        return penalty

    def _publish(self) -> None:
        """Mirror reservation levels into the metrics registry."""
        for t in self._shared:
            METRICS.gauge(f"cluster.reserved_bytes.tier{t}").set(
                self._reserved[t])
        METRICS.gauge("cluster.devices_free").set(len(self._free_devices))


def demand_from_record(record: Mapping[str, Any],
                       job_id: str) -> JobDemand:
    """Build a :class:`JobDemand` from a plan record's ``tier_bytes``.

    Records from plans without any swapped stash (fully resident models)
    yield an empty demand — the job still occupies a device slot.
    """
    raw = record.get("tier_bytes") or {}
    tier_bytes = {int(t): float(b) for t, b in raw.items()
                  if float(b) > 0}
    return JobDemand(job_id=job_id, tier_bytes=tier_bytes)


def place_jobs(arbiter: ClusterArbiter,
               demands: List[JobDemand]) -> Dict[str, Any]:
    """Arbitrate a batch of demands; denials are recorded, not raised.

    Returns a JSON-ready report: per-job placement or typed denial, plus
    the cluster snapshot after the batch.  Jobs are placed in list order
    (the daemon's admission order), which is what makes the arbitration
    *collocation-aware* rather than per-job: later jobs see the
    reservations earlier jobs debited.
    """
    placed: List[Dict[str, Any]] = []
    for demand in demands:
        try:
            placement = arbiter.place(demand)
        except (PlacementDenied, BadRequest) as exc:
            placed.append({"job_id": demand.job_id, "placed": False,
                           "error": {"type": exc.code,
                                     "message": str(exc)}})
            continue
        placed.append({"job_id": demand.job_id, "placed": True,
                       **placement.to_dict()})
    return {"jobs": placed, "cluster": arbiter.snapshot()}
