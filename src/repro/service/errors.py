"""Typed rejections shared by the planner daemon, cluster and protocol.

Admission control is only useful if saturation is *visible*: a shed
request must carry a machine-readable reason so callers can retry, back
off, or re-route — never a hang, never a bare string.  Every rejection
subclass carries a stable wire ``code`` that the socket protocol
round-trips (:mod:`repro.service.server` serializes it,
:mod:`repro.service.client` re-raises the matching class on the far
side), so a remote client catches exactly the same typed exceptions an
in-process caller does.
"""

from __future__ import annotations

from typing import Dict, Type

__all__ = [
    "ServiceRejection",
    "QueueFull",
    "DeadlineExpired",
    "ServiceClosed",
    "PlanningFailed",
    "PlacementDenied",
    "BadRequest",
    "WorkerCrashed",
    "rejection_for",
]


class ServiceRejection(RuntimeError):
    """Base of every typed planner-service rejection.

    ``code`` is the stable wire identifier for the rejection type; the
    base class's ``"rejected"`` also serves as the catch-all when a
    client receives a code minted by a newer server.  ``retryable``
    marks transient rejections a client may retry with backoff
    (saturation, a crashed worker) as opposed to deterministic ones
    (a bad request fails identically every time).
    """

    code = "rejected"
    retryable = False


class QueueFull(ServiceRejection):
    """Admission control shed the request: the queue is at depth."""

    code = "queue_full"
    retryable = True


class DeadlineExpired(ServiceRejection):
    """The request's deadline passed before a plan could be served."""

    code = "deadline_expired"


class ServiceClosed(ServiceRejection):
    """The daemon is stopping and no longer admits requests."""

    code = "service_closed"


class PlanningFailed(ServiceRejection):
    """Planning itself raised; the message names the original error."""

    code = "planning_failed"


class PlacementDenied(ServiceRejection):
    """Cluster arbitration could not fit the job on the shared tiers."""

    code = "placement_denied"


class BadRequest(ServiceRejection):
    """The request is malformed (unknown op, missing field, bad value)."""

    code = "bad_request"


class WorkerCrashed(ServiceRejection):
    """A daemon worker died mid-plan (chaos injection or a real fault).

    The request itself was well-formed — a retry against the respawned
    worker is expected to succeed, hence ``retryable``.
    """

    code = "worker_crashed"
    retryable = True


#: Wire code -> rejection class, for protocol round-tripping.
REJECTIONS: Dict[str, Type[ServiceRejection]] = {
    cls.code: cls
    for cls in (QueueFull, DeadlineExpired, ServiceClosed, PlanningFailed,
                PlacementDenied, BadRequest, WorkerCrashed,
                ServiceRejection)
}


def rejection_for(code: str, message: str) -> ServiceRejection:
    """Rebuild the typed rejection a server serialized as ``code``.

    Unknown codes (a newer server, an internal error) map to the base
    :class:`ServiceRejection` so clients can always catch one type.
    """
    return REJECTIONS.get(code, ServiceRejection)(message)
