"""``python -m repro`` — the planning service front door.

Examples, benchmarks, and ad-hoc studies all need the same thing: a KARMA
plan for a (model, hardware) configuration, fast.  This CLI plans one
configuration or a batch manifest, reports cache hit/miss and search
wall-time per configuration, and shares the content-addressed plan cache
(:mod:`repro.cache`) with every other caller.

Usage::

    python -m repro plan --model resnet200 --batch 16
    python -m repro plan --model resnet200 --batch 16 --hierarchy abci
    python -m repro plan --manifest configs.json --workers 4
    python -m repro cache info
    python -m repro cache clear
    python -m repro validate
    python -m repro validate --config cnn gpt --target-wall 0.5 --json
    python -m repro elastic --steps 12 --world 4 --dirty-rate 0.5
    python -m repro trace unet --server /tmp/planner.sock --hierarchy abci
    python -m repro top /tmp/planner.sock --interval 1

A manifest is a JSON list of configuration objects (or ``{"configs":
[...]}``); each object takes the same keys as the single-config flags::

    [{"model": "resnet200", "batch": 16, "hierarchy": "abci"},
     {"model": "unet", "batch": 16}]

With ``--workers N`` a manifest is planned N configurations at a time in
separate processes (each full search is independent); a single
configuration instead shards its portfolio sweep across N workers, which
stays bit-identical to the serial sweep.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

HIERARCHIES = ("none", "two-tier", "abci", "tiny")
LINKS = ("calibrated", "pcie", "nvlink")


def _resolve_hierarchy(name: str):
    from .hardware.tiering import (
        abci_hierarchy,
        tiny_test_hierarchy,
        two_tier_hierarchy,
    )

    if name == "none":
        return None
    if name == "two-tier":
        return two_tier_hierarchy()
    if name == "abci":
        return abci_hierarchy()
    if name == "tiny":
        return tiny_test_hierarchy()
    raise ValueError(f"unknown hierarchy {name!r}; choose from {HIERARCHIES}")


def _resolve_transfer(link: str):
    from .hardware.interconnect import TransferModel
    from .hardware.spec import (
        abci_host,
        karma_swap_link,
        nvlink2,
        pcie_gen3_x16,
        v100_sxm2_16gb,
    )

    links = {"calibrated": karma_swap_link, "pcie": pcie_gen3_x16,
             "nvlink": nvlink2}
    if link not in links:
        raise ValueError(f"unknown link {link!r}; choose from {LINKS}")
    device = v100_sxm2_16gb()
    return device, TransferModel(link=links[link](), device=device,
                                 host=abci_host())


def plan_config_full(config: Dict[str, Any], *,
                     cache_dir: Optional[str] = None,
                     use_cache: bool = True,
                     n_workers: int = 1,
                     cache: Optional[Any] = None
                     ) -> "Tuple[Dict[str, Any], Any]":
    """Plan one configuration dict; returns ``(record, KarmaPlan)``.

    The record is the JSON-ready summary; the
    :class:`~repro.core.planner.KarmaPlan` carries the full plan and
    cost model for callers that keep going (trace export compiles and
    simulates it).  Session-cumulative cache counters are flushed to the
    cache's sidecar before returning.  Passing an existing ``cache``
    instance (the planner daemon's shared warm tier) overrides
    ``cache_dir``/``use_cache``; flushing is then the owner's job.
    """
    from .cache.plan_cache import PlanCache
    from .core.planner import plan
    from .hardware.tiering import STORAGE_TIER
    from .models.registry import build
    from .tiering.placement import swapped_stash_bytes

    model = config["model"]
    batch = int(config["batch"])
    graph = build(model)
    device, transfer = _resolve_transfer(config.get("link", "calibrated"))
    hierarchy = _resolve_hierarchy(config.get("hierarchy", "none"))
    capacity = config.get("capacity")
    owns_cache = cache is None
    if cache is None and use_cache:
        cache = PlanCache(cache_dir=Path(cache_dir) if cache_dir else None)

    t0 = time.perf_counter()
    kp = plan(graph, batch_size=batch, device=device, transfer=transfer,
              recompute=bool(config.get("recompute", True)),
              method=config.get("method", "auto"),
              max_span=int(config.get("max_span", 64)),
              capacity=float(capacity) if capacity is not None else None,
              hierarchy=hierarchy,
              placement_policy=config.get("placement", "auto"),
              cache=cache, n_workers=n_workers)
    wall = time.perf_counter() - t0
    if cache is not None and owns_cache:
        cache.flush_session_stats()

    tier_bytes: Dict[str, int] = {}
    placement_tiers = getattr(kp.placement, "tier_bytes", None)
    if placement_tiers:
        tier_bytes = {str(t): int(n)
                      for t, n in sorted(placement_tiers.items())}
    elif kp.plan.swapped:
        # no explicit tier placement: every swapped stash lands in DRAM
        stash = swapped_stash_bytes(list(kp.plan.blocks),
                                    list(kp.plan.policies), kp.cost)
        tier_bytes = {"1": int(sum(stash.values()))}

    record = {
        "model": model,
        "batch": batch,
        "hierarchy": config.get("hierarchy", "none"),
        "method": kp.blocking.method,
        "cache": ("off" if cache is None
                  else "hit" if kp.cache_hit else "miss"),
        "cache_key": kp.cache_key,
        "wall_s": round(wall, 6),
        "search_s": round(kp.search_time, 6),
        "makespan_s": kp.blocking.objective,
        "blocks": kp.plan.num_blocks,
        "swapped": len(kp.plan.swapped),
        "recomputed": len(kp.plan.recomputed),
        "resident": len(kp.plan.resident),
        "storage_blocks": sorted(b for b, t in kp.plan.placements.items()
                                 if t >= STORAGE_TIER),
        "tier_bytes": tier_bytes,
        "rejected_grid_points": len(kp.blocking.rejected),
        "plan_string": kp.plan.plan_string(),
    }
    return record, kp


def plan_config(config: Dict[str, Any], *,
                cache_dir: Optional[str] = None,
                use_cache: bool = True,
                n_workers: int = 1) -> Dict[str, Any]:
    """Plan one configuration dict; returns a JSON-ready result record.

    This is the service call the CLI, examples, and benchmarks go
    through.  Module-level and argument-picklable so batch manifests can
    fan out across processes.
    """
    record, _ = plan_config_full(config, cache_dir=cache_dir,
                                 use_cache=use_cache, n_workers=n_workers)
    return record


def _plan_config_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool entry for one manifest configuration.

    Never raises: a failed configuration reports an ``error`` record so
    one infeasible entry cannot sink the rest of the batch.
    """
    try:
        return plan_config(task["config"], cache_dir=task["cache_dir"],
                           use_cache=task["use_cache"],
                           n_workers=task.get("n_workers", 1))
    except Exception as exc:  # noqa: BLE001 - surfaced in the result record
        return {"model": task["config"].get("model", "?"),
                "batch": task["config"].get("batch", "?"),
                "error": f"{type(exc).__name__}: {exc}"}


def _load_manifest(path: Path) -> List[Dict[str, Any]]:
    data = json.loads(path.read_text())
    if isinstance(data, dict):
        data = data.get("configs", [])
    if not isinstance(data, list) or not all(isinstance(c, dict)
                                             for c in data):
        raise ValueError(f"manifest {path} must be a JSON list of config "
                         "objects (or {'configs': [...]})")
    return data


def _format_result(r: Dict[str, Any]) -> str:
    if "error" in r:
        return (f"  {r['model']:<14} batch {r['batch']:<5} "
                f"FAILED: {r['error']}")
    # served via the planner daemon: show the hit tier (hot/warm/cold)
    tier = f" tier={r['tier']}" if "tier" in r else ""
    return (f"  {r['model']:<14} batch {r['batch']:<5} "
            f"cache={r['cache']:<4}{tier} "
            f"wall={r['wall_s'] * 1e3:9.1f} ms  "
            f"search={r['search_s'] * 1e3:9.1f} ms  "
            f"blocks={r['blocks']:<3} "
            f"S/R/C={r['swapped']}/{r['resident']}/{r['recomputed']}")


# ---------------------------------------------------------------------------
# Observability plumbing shared by plan/validate/trace
# ---------------------------------------------------------------------------

def _compiled_sim(kp: Any, hierarchy: Any) -> Tuple[Any, Any]:
    """Compile a planned configuration and simulate it (ops, SimResult)."""
    from .sim.engine import simulate
    from .sim.trainer_sim import (
        _stash_ledger_capacity,
        block_costs,
        compile_plan,
    )

    costs = block_costs(kp.plan.blocks, kp.cost, hierarchy=hierarchy,
                        placements=kp.plan.placements)
    ledger = _stash_ledger_capacity(kp.plan, costs, kp.cost, kp.capacity)
    ops = compile_plan(kp.plan, costs)
    return ops, simulate(ops, memory_capacity=ledger)


def _export_trace(output: str, spans: Optional[List[Any]] = None,
                  sims: Sequence[Tuple[str, Any]] = (),
                  runtimes: Sequence[Tuple[str, Any]] = ()) -> Path:
    """Assemble planner/sim/runtime tracks into one Perfetto JSON file.

    Each timeline becomes its own trace process: planner spans first,
    then one predicted (sim) process per config, then one measured
    (runtime) process per config — side by side in the viewer.
    """
    from .obs.export import (
        chrome_trace,
        runtime_track_events,
        sim_track_events,
        span_track_events,
        write_chrome_trace,
    )

    events: List[Dict[str, Any]] = []
    pid = 1
    if spans:
        events.extend(span_track_events(spans, pid=pid))
        pid += 1
    for name, sim in sims:
        if sim is None:
            continue
        events.extend(sim_track_events(sim, pid=pid, process_name=name))
        pid += 1
    for name, trace in runtimes:
        if trace is None:
            continue
        events.extend(runtime_track_events(trace, pid=pid,
                                           process_name=name))
        pid += 1
    return write_chrome_trace(output, chrome_trace(events))


def _dump_metrics(path: Optional[str], *, json_mode: bool = False) -> None:
    """Write the process-wide metrics snapshot (``-`` for stdout).

    With ``json_mode`` the file notice goes to stderr so ``--json``
    stdout stays a single machine-readable document.
    """
    if not path:
        return
    from .obs.metrics import METRICS

    text = json.dumps(METRICS.snapshot(), indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        Path(path).write_text(text + "\n")
        print(f"metrics snapshot written to {path}",
              file=sys.stderr if json_mode else sys.stdout)


def _trace_notice(path: Path, *, json_mode: bool = False) -> None:
    """Tell the user where the trace landed (stderr under ``--json``)."""
    print(f"trace written to {path} "
          "(load in ui.perfetto.dev or chrome://tracing)",
          file=sys.stderr if json_mode else sys.stdout)


def _plan_via_server(args: argparse.Namespace,
                     configs: List[Dict[str, Any]]) -> int:
    """Plan through a running daemon (``serve``) instead of in-process.

    Typed rejections (queue full, deadline expired, ...) become error
    records, mirroring how manifest failures are reported.
    """
    from .service.client import PlannerClient
    from .service.errors import ServiceRejection
    from .service.server import parse_address

    address = parse_address(args.server)
    results: List[Dict[str, Any]] = []
    t0 = time.perf_counter()
    try:
        with PlannerClient(address) as client:
            for config in configs:
                try:
                    reply = client.plan(config, deadline_s=args.deadline,
                                        retries=args.retries)
                except ServiceRejection as exc:
                    results.append({"model": config.get("model", "?"),
                                    "batch": config.get("batch", "?"),
                                    "error": f"{exc.code}: {exc}"})
                    continue
                record = dict(reply.get("record") or {})
                record["tier"] = reply.get("tier", "?")
                record["merged"] = bool(reply.get("merged", False))
                record["wall_s"] = float(reply.get("wall_s", 0.0))
                results.append(record)
    except OSError as exc:
        print(f"error: cannot reach planner daemon at {args.server}: "
              f"{exc}", file=sys.stderr)
        return 2
    total = time.perf_counter() - t0

    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    else:
        print(f"planned {len(results)} configuration(s) in {total:.2f} s "
              f"via daemon at {args.server}:")
        for r in results:
            print(_format_result(r))
        errors = sum(1 for r in results if "error" in r)
        merged = sum(1 for r in results if r.get("merged"))
        print(f"  -> {merged} single-flight merge(s), "
              f"{errors} rejection(s)/failure(s)")
    return 1 if any("error" in r for r in results) else 0


def _run_plan(args: argparse.Namespace) -> int:
    if (args.manifest is None) == (args.model is None):
        print("error: provide exactly one of --model or --manifest",
              file=sys.stderr)
        return 2

    if args.manifest is not None:
        configs = _load_manifest(Path(args.manifest))
    else:
        configs = [{"model": args.model, "batch": args.batch,
                    "hierarchy": args.hierarchy, "method": args.method,
                    "recompute": not args.no_recompute,
                    "max_span": args.max_span, "placement": args.placement,
                    "link": args.link,
                    **({"capacity": args.capacity}
                       if args.capacity is not None else {})}]
    use_cache = not args.no_cache
    workers = max(1, args.workers)

    if args.server is not None:
        if args.trace is not None:
            print("error: --trace is not available with --server "
                  "(the daemon owns the planner process)",
                  file=sys.stderr)
            return 2
        return _plan_via_server(args, configs)

    if args.trace is not None:
        if args.manifest is not None:
            print("error: --trace requires a single --model configuration",
                  file=sys.stderr)
            return 2
        from .obs.trace import TRACER

        TRACER.clear()
        TRACER.enable()
        try:
            record, kp = plan_config_full(
                configs[0], cache_dir=args.cache_dir, use_cache=use_cache,
                n_workers=workers)
            _, sim = _compiled_sim(kp,
                                   _resolve_hierarchy(args.hierarchy))
            spans = TRACER.drain()
        finally:
            TRACER.disable()
        path = _export_trace(args.trace, spans=spans,
                             sims=[(f"predicted (sim) [{args.model}]",
                                    sim)])
        if args.json:
            print(json.dumps([record], indent=2, sort_keys=True))
        else:
            print(_format_result(record))
        _trace_notice(path, json_mode=args.json)
        _dump_metrics(args.metrics, json_mode=args.json)
        return 0

    t0 = time.perf_counter()
    if args.manifest is not None and workers > 1 and len(configs) > 1:
        from concurrent.futures import ProcessPoolExecutor
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            ctx = mp.get_context("spawn")
        tasks = [{"config": c, "cache_dir": args.cache_dir,
                  "use_cache": use_cache} for c in configs]
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=ctx) as pool:
            results = list(pool.map(_plan_config_task, tasks))
    else:
        # single config (or serial manifest): the portfolio sweep inside
        # each plan gets the workers instead of the manifest level
        results = [_plan_config_task(
            {"config": c, "cache_dir": args.cache_dir,
             "use_cache": use_cache, "n_workers": workers})
            for c in configs]
    total = time.perf_counter() - t0

    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    else:
        print(f"planned {len(results)} configuration(s) in {total:.2f} s "
              f"({workers} worker(s), cache "
              f"{'off' if not use_cache else 'on'}):")
        for r in results:
            print(_format_result(r))
        hits = sum(1 for r in results if r.get("cache") == "hit")
        misses = sum(1 for r in results if r.get("cache") == "miss")
        errors = sum(1 for r in results if "error" in r)
        print(f"  -> {hits} cache hit(s), {misses} miss(es), "
              f"{errors} failure(s)")
    _dump_metrics(args.metrics, json_mode=args.json)
    return 1 if any("error" in r for r in results) else 0


def _run_cache(args: argparse.Namespace) -> int:
    from .cache.plan_cache import PlanCache

    cache = PlanCache(cache_dir=Path(args.cache_dir)
                      if args.cache_dir else None)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached plan(s) from {cache.cache_dir}")
        return 0
    entries = list(cache.keys())
    print(f"plan cache at {cache.cache_dir}: {len(entries)} entr(ies)")
    for key in entries[:20]:
        print(f"  {key}")
    if len(entries) > 20:
        print(f"  ... and {len(entries) - 20} more")
    cum = cache.cumulative_stats()
    print("session totals (cumulative across invocations; reset by "
          "'cache clear'):")
    print(f"  {cum['hits']} hit(s) ({cum['memory_hits']} mem / "
          f"{cum['disk_hits']} disk), {cum['misses']} miss(es), "
          f"{cum['stores']} store(s), {cum['evictions']} eviction(s), "
          f"{cum['invalidated']} invalidated")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from .service.server import parse_address

    if (args.socket is None) == (args.port is None):
        print("error: provide exactly one of --socket or --port",
              file=sys.stderr)
        return 2
    address = parse_address(args.socket if args.socket is not None
                            else str(args.port))

    if args.ping or args.stop:
        return _serve_client_op(args, address)

    from .cache.plan_cache import PlanCache
    from .service.cluster import ClusterArbiter
    from .service.daemon import PlannerDaemon, ServiceConfig
    from .service.server import PlannerServer

    cache = None
    if not args.no_cache:
        cache = PlanCache(cache_dir=Path(args.cache_dir)
                          if args.cache_dir else None)
    cluster = None
    if args.cluster != "none":
        cluster = ClusterArbiter(_resolve_hierarchy(args.cluster),
                                 n_devices=args.devices)
    service_config = ServiceConfig(
        queue_depth=args.queue_depth,
        service_workers=args.service_workers,
        pool_workers=args.pool_workers,
        max_workers_per_request=args.max_request_workers,
        default_deadline_s=args.deadline,
        hot_capacity=args.hot_capacity)
    chaos = None
    if args.chaos_rate > 0 or args.chaos_first > 0:
        from .elastic.faults import ChaosMonkey

        chaos = ChaosMonkey(args.chaos_rate, seed=args.chaos_seed,
                            crash_first=args.chaos_first)
    daemon = PlannerDaemon(service_config, cache=cache, cluster=cluster,
                           chaos=chaos)
    server = PlannerServer(daemon, address)
    daemon.start()
    print(f"planner daemon serving on {address} "
          f"(queue={args.queue_depth}, workers={args.service_workers}, "
          f"pool={args.pool_workers}, cache "
          f"{'off' if cache is None else 'on'}, cluster "
          f"{args.cluster}"
          + (f", chaos rate={args.chaos_rate} first={args.chaos_first}"
             if chaos is not None else "")
          + "); stop with 'serve --stop' or Ctrl-C",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.stop()
        daemon.stop()
        _dump_metrics(args.metrics)
    return 0


def _serve_client_op(args: argparse.Namespace, address: Any) -> int:
    """The ``serve --ping`` / ``serve --stop`` client-side operations."""
    from .service.client import PlannerClient, wait_for_server
    from .service.errors import ServiceRejection

    if args.ping:
        timeout = args.wait if args.wait is not None else 2.0
        if wait_for_server(address, timeout=timeout):
            print(f"planner daemon at {address} is up")
            return 0
        print(f"error: no planner daemon answered at {address} "
              f"within {timeout}s", file=sys.stderr)
        return 1
    try:
        with PlannerClient(address, timeout=10.0) as client:
            client.shutdown()
    except (OSError, ServiceRejection) as exc:
        print(f"error: could not stop daemon at {address}: {exc}",
              file=sys.stderr)
        return 1
    print(f"planner daemon at {address} stopping")
    return 0


def _run_elastic(args: argparse.Namespace) -> int:
    """The ``elastic`` subcommand: a trace-driven churn scenario.

    Runs a real data-parallel trainer through preemptions/joins with
    checkpoint-backed recovery, prints (or JSON-dumps) the per-event
    recovery reports, and exits non-zero if recovery ever failed or
    replicas diverged.
    """
    import tempfile

    from .elastic.controller import RecoveryError, RecoveryPolicy
    from .elastic.faults import FaultTrace
    from .elastic.scenario import ChurnScenario, ScenarioConfig

    if args.global_batch % args.world:
        print(f"error: --global-batch {args.global_batch} must divide by "
              f"--world {args.world}", file=sys.stderr)
        return 2
    policy = RecoveryPolicy(mode=args.mode, backoff_base_s=0.001,
                            backoff_max_s=0.05)
    config = ScenarioConfig(
        steps=args.steps, world=args.world,
        global_batch=args.global_batch, seed=args.seed,
        checkpoint_interval=args.checkpoint_interval, policy=policy,
        preemptions=args.preemptions, joins=args.joins,
        slowdowns=args.slowdowns, dirty_rate=args.dirty_rate)
    trace = FaultTrace.from_json(args.trace_file) if args.trace_file \
        else None
    tmpdir = None
    ckpt_dir = args.checkpoint_dir
    if ckpt_dir is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-elastic-")
        ckpt_dir = tmpdir.name
    try:
        scenario = ChurnScenario(config, ckpt_dir, trace=trace)
        if args.save_trace:
            path = scenario.trace.to_json(args.save_trace)
            print(f"trace written to {path}",
                  file=sys.stderr if args.json else sys.stdout)
        try:
            result = scenario.run()
        except RecoveryError as exc:
            print(f"error: recovery failed ({exc.code}): {exc}",
                  file=sys.stderr)
            return 1
    finally:
        if tmpdir is not None:
            tmpdir.cleanup()

    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"elastic churn scenario: {config.steps} steps, world "
              f"{config.world} -> {result.final_world}, global batch "
              f"{config.global_batch}")
        print(f"  events      : {len(result.trace)} "
              f"({result.trace.preemptions} preempt, "
              f"{result.trace.joins} join)")
        print(f"  recoveries  : "
              + (", ".join(r.decision for r in result.reports) or "none"))
        print(f"  lost steps  : {result.lost_steps} "
              f"(replayed {result.replayed_steps})")
        print(f"  checkpoints : {result.checkpoints_written}")
        print(f"  final loss  : {result.losses[-1]:.6f}")
        for r in result.reports:
            e = r.event
            print(f"    step {e.step:>3} {e.kind.value:<9} "
                  f"world {r.world_before}->{r.world_after} "
                  f"decision={r.decision} attempts={r.attempts} "
                  f"recover={r.time_to_recover_s * 1e3:.1f}ms"
                  + (f" lost={r.lost_steps}" if r.lost_steps else ""))
        print("  replicas bit-identical after every world change: yes")
    _dump_metrics(args.metrics, json_mode=args.json)
    return 0


def _run_validate(args: argparse.Namespace) -> int:
    from .eval.validation import (
        DEFAULT_CONFIGS,
        VALIDATION_CONFIGS,
        validate_many,
    )

    if args.list:
        print("validation configs:")
        for name, cfg in sorted(VALIDATION_CONFIGS.items()):
            print(f"  {name:<8} batch {cfg.batch_size:<4} "
                  f"link {cfg.link_bandwidth / 1e9:.0f} GB/s")
        return 0
    names = args.config or list(DEFAULT_CONFIGS)
    unknown = [n for n in names if n not in VALIDATION_CONFIGS]
    if unknown:
        print(f"error: unknown config(s) {unknown}; known: "
              f"{sorted(VALIDATION_CONFIGS)}", file=sys.stderr)
        return 2

    calibration = None
    if args.calibration is not None:
        from .costs.trace_fit import CalibrationArtifact

        try:
            artifact = CalibrationArtifact.load(args.calibration)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot read calibration artifact "
                  f"{args.calibration}: {exc}", file=sys.stderr)
            return 2
        calibration = artifact.op_scales
        if not args.json:
            print(f"applying calibration artifact {args.calibration} "
                  f"({artifact.model or '?'}, "
                  f"{len(calibration)} op scales)\n")

    traced = args.trace is not None
    if traced:
        from .obs.trace import TRACER

        TRACER.clear()
        TRACER.enable()
    t0 = time.perf_counter()
    try:
        reports = validate_many(names, target_wall_s=args.target_wall,
                                seed=args.seed, calibration=calibration)
        total = time.perf_counter() - t0
        spans = TRACER.drain() if traced else []
    finally:
        if traced:
            TRACER.disable()

    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2,
                         sort_keys=True))
    else:
        print("sim-vs-real stall validation (async runtime paced with the "
              "simulator's own durations):\n")
        for r in reports:
            print(r.table())
            print(r.stall_detail())
            print(f"  blocks={r.num_blocks}  "
                  f"makespan ratio (measured/predicted)="
                  f"{r.makespan_ratio:.3f}  "
                  f"max |error|={r.max_abs_error:.4f}\n")
        worst = max(r.max_abs_error for r in reports)
        print(f"validated {len(reports)} config(s) in {total:.2f} s; "
              f"worst per-resource stall-fraction error {worst:.4f}")
    if traced:
        path = _export_trace(
            args.trace, spans=spans,
            sims=[(f"predicted (sim) [{r.config}]", r.sim_result)
                  for r in reports],
            runtimes=[(f"measured (runtime) [{r.config}]", r.runtime_trace)
                      for r in reports])
        _trace_notice(path, json_mode=args.json)
    _dump_metrics(args.metrics, json_mode=args.json)
    if args.max_error is not None and any(
            r.max_abs_error > args.max_error for r in reports):
        print(f"error: stall-fraction error exceeds --max-error "
              f"{args.max_error}", file=sys.stderr)
        return 1
    return 0


def _run_calibrate(args: argparse.Namespace) -> int:
    """Fit a calibration artifact from measured validation runs.

    Runs the sim-vs-real loop for each requested config, least-squares
    fits per-op compute scales and per-link latency/bandwidth from the
    recorded runtime traces, and writes the merged
    :class:`~repro.costs.trace_fit.CalibrationArtifact` as JSON.
    """
    from .costs.trace_fit import fit_validation_report, merge_artifacts
    from .eval.validation import (
        DEFAULT_CONFIGS,
        VALIDATION_CONFIGS,
        validate_many,
    )

    names = args.config or list(DEFAULT_CONFIGS)
    unknown = [n for n in names if n not in VALIDATION_CONFIGS]
    if unknown:
        print(f"error: unknown config(s) {unknown}; known: "
              f"{sorted(VALIDATION_CONFIGS)}", file=sys.stderr)
        return 2

    t0 = time.perf_counter()
    reports = validate_many(names, target_wall_s=args.target_wall,
                            seed=args.seed)
    artifact = merge_artifacts([fit_validation_report(r) for r in reports])
    artifact.save(args.output)
    fit_s = time.perf_counter() - t0

    check_rows = []
    if args.check:
        calibrated = validate_many(names, target_wall_s=args.target_wall,
                                   seed=args.seed,
                                   calibration=artifact.op_scales)
        check_rows = [
            {"config": before.config,
             "uncalibrated_error": round(before.max_abs_error, 4),
             "calibrated_error": round(after.max_abs_error, 4)}
            for before, after in zip(reports, calibrated)]

    if args.json:
        payload: Dict[str, Any] = {"artifact": args.output,
                                   "configs": list(names),
                                   "fit_seconds": round(fit_s, 3),
                                   "summary": artifact.to_json()}
        if check_rows:
            payload["check"] = check_rows
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"fitted {len(names)} config(s) in {fit_s:.2f} s")
        print(artifact.summary())
        for row in check_rows:
            print(f"  [{row['config']}] max |error| "
                  f"uncalibrated {row['uncalibrated_error']:.4f} -> "
                  f"calibrated {row['calibrated_error']:.4f}")
        print(f"wrote {args.output}")
        print("replay with: python -m repro validate "
              f"--calibration {args.output}")
    _dump_metrics(args.metrics, json_mode=args.json)
    return 0


def _trace_via_server(args: argparse.Namespace) -> int:
    """The ``trace --server`` path: one distributed-trace round trip.

    Mints a fresh :class:`~repro.obs.trace.TraceContext`, plans through
    a running daemon with span collection, and stitches the local client
    span together with the daemon/worker spans shipped back in the reply
    into one multi-process Chrome trace timeline.
    """
    from .models.registry import REGISTRY
    from .obs.export import (
        chrome_trace,
        stitched_trace_events,
        write_chrome_trace,
    )
    from .obs.trace import TRACER, TraceContext, span_from_dict
    from .service.client import PlannerClient
    from .service.errors import ServiceRejection
    from .service.server import parse_address

    name = args.config
    if name not in REGISTRY:
        print(f"error: trace --server plans registered models only; "
              f"known: {sorted(REGISTRY)}", file=sys.stderr)
        return 2
    config: Dict[str, Any] = {
        "model": name, "batch": args.batch,
        "hierarchy": args.hierarchy, "link": args.link,
        **({"capacity": args.capacity}
           if args.capacity is not None else {})}
    output = args.output or f"trace_{name}.json"
    address = parse_address(args.server)

    ctx = TraceContext.new()
    TRACER.clear()
    TRACER.enable()
    try:
        with TRACER.activate(ctx), \
                TRACER.span("client.plan", "client", track="client",
                            model=name, server=str(args.server)):
            with PlannerClient(address, timeout=60.0) as client:
                reply = client.plan(config, deadline_s=args.deadline,
                                    trace=ctx, collect_spans=True,
                                    retries=args.retries)
    except ServiceRejection as exc:
        print(f"error: daemon rejected the plan ({exc.code}): {exc}",
              file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot reach planner daemon at {args.server}: "
              f"{exc}", file=sys.stderr)
        return 2
    finally:
        spans = TRACER.drain()
        TRACER.disable()

    spans.extend(span_from_dict(d) for d in reply.get("spans") or [])
    path = write_chrome_trace(output, chrome_trace(
        stitched_trace_events(spans)))

    record = dict(reply.get("record") or {})
    record["tier"] = reply.get("tier", "?")
    record["wall_s"] = float(reply.get("wall_s", 0.0))
    procs = sorted({s.proc or "client" for s in spans})
    print(_format_result(record))
    print(f"  distributed trace {ctx.trace_id}: {len(spans)} span(s) "
          f"across {len(procs)} process(es): {', '.join(procs)}")
    _trace_notice(path)
    _dump_metrics(args.metrics)
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    if args.server is not None:
        return _trace_via_server(args)

    from .eval.validation import VALIDATION_CONFIGS, validate_config
    from .models.registry import REGISTRY
    from .obs.trace import TRACER

    name = args.config
    is_validation = name in VALIDATION_CONFIGS
    if not is_validation and name not in REGISTRY:
        print(f"error: unknown config {name!r}; validation configs: "
              f"{sorted(VALIDATION_CONFIGS)}, models: {sorted(REGISTRY)}",
              file=sys.stderr)
        return 2
    output = args.output or f"trace_{name}.json"

    TRACER.clear()
    TRACER.enable()
    try:
        if is_validation:
            # full sim-vs-real loop: planner spans + predicted timeline
            # + the measured runtime iteration, side by side
            report = validate_config(
                name, target_wall_s=args.target_wall,
                hierarchy=_resolve_hierarchy(args.hierarchy),
                seed=args.seed)
            spans = TRACER.drain()
            sims: List[Tuple[str, Any]] = [
                (f"predicted (sim) [{name}]", report.sim_result)]
            runtimes: List[Tuple[str, Any]] = [
                (f"measured (runtime) [{name}]", report.runtime_trace)]
            summary = report.stall_detail()
        else:
            # registered model: planner spans + predicted timeline only
            # (no numeric runtime at these sizes)
            config: Dict[str, Any] = {
                "model": name, "batch": args.batch,
                "hierarchy": args.hierarchy, "link": args.link,
                **({"capacity": args.capacity}
                   if args.capacity is not None else {})}
            record, kp = plan_config_full(
                config, cache_dir=args.cache_dir,
                use_cache=not args.no_cache)
            _, sim = _compiled_sim(kp, _resolve_hierarchy(args.hierarchy))
            spans = TRACER.drain()
            sims = [(f"predicted (sim) [{name}]", sim)]
            runtimes = []
            summary = _format_result(record)
    finally:
        TRACER.disable()

    path = _export_trace(output, spans=spans, sims=sims, runtimes=runtimes)
    print(summary)
    _trace_notice(path)
    _dump_metrics(args.metrics)
    return 0


def _hist_line(hists: Dict[str, Any], name: str) -> str:
    """One ``p50/p95/p99 (n)`` line for a histogram summary, in ms."""
    h = hists.get(name) or {}
    if not h.get("count"):
        return "no samples yet"
    return (f"p50={h.get('p50', 0.0) * 1e3:8.1f}ms  "
            f"p95={h.get('p95', 0.0) * 1e3:8.1f}ms  "
            f"p99={h.get('p99', 0.0) * 1e3:8.1f}ms  "
            f"(n={h.get('count', 0):.0f})")


def _hit_ratio(hits: float, total: float) -> str:
    return f"{hits / total:5.1%}" if total else "  n/a"


def _render_top(frame: Dict[str, Any], *, seq: int, addr: str) -> str:
    """Render one telemetry frame as the ``top`` one-screen view."""
    metrics = frame.get("metrics") or {}
    c: Dict[str, float] = metrics.get("counters") or {}
    hists: Dict[str, Any] = metrics.get("histograms") or {}
    requests = c.get("service.requests", 0)
    warm_hits = c.get("plan_cache.hits", 0)
    warm_total = warm_hits + c.get("plan_cache.misses", 0)
    lines = [
        f"planner daemon at {addr} — up {frame.get('uptime_s', 0.0):.1f}s, "
        f"frame {seq + 1}"
        + ("" if frame.get("running") else "  [NOT RUNNING]"),
        f"  queue      : {frame.get('queue_depth', 0)}/"
        f"{frame.get('queue_capacity', 0)} deep   "
        f"workers {frame.get('workers_free', 0)}/"
        f"{frame.get('pool_workers', 0)} free",
        f"  hot tier   : {frame.get('hot_entries', 0)}/"
        f"{frame.get('hot_capacity', 0)} entries   hit ratio "
        f"{_hit_ratio(c.get('service.plans.hot', 0), requests)} hot / "
        f"{_hit_ratio(warm_hits, warm_total)} warm",
        f"  requests   : {requests:.0f} total   "
        f"{c.get('service.singleflight_merges', 0):.0f} merged "
        f"(single-flight)   "
        f"{c.get('service.rejected.queue_full', 0):.0f} shed   "
        f"{c.get('service.rejected.deadline', 0):.0f} deadline   "
        f"{c.get('service.plan_failures', 0):.0f} failed",
        f"  plan       : {_hist_line(hists, 'service.latency.plan')}",
        f"  queue wait : {_hist_line(hists, 'service.latency.queue')}",
        f"  end-to-end : {_hist_line(hists, 'service.request_seconds')}",
        f"  elastic    : {c.get('elastic.recoveries', 0):.0f} recoveries   "
        f"{c.get('elastic.degrades', 0):.0f} degrades   "
        f"{c.get('service.worker_crashes', 0):.0f} crash(es) / "
        f"{c.get('service.workers_respawned', 0):.0f} respawned",
        f"  flight     : {c.get('flight.spans', 0):.0f} spans   "
        f"{c.get('flight.events', 0):.0f} events   "
        f"{c.get('flight.dumps', 0):.0f} dump(s)",
    ]
    cluster = frame.get("cluster")
    if cluster:
        lines.append(f"  cluster    : {json.dumps(cluster, sort_keys=True)}")
    return "\n".join(lines)


def _run_top(args: argparse.Namespace) -> int:
    """The ``top`` subcommand: live telemetry view of a running daemon."""
    from .service.client import PlannerClient
    from .service.errors import ServiceRejection
    from .service.server import parse_address

    address = parse_address(args.addr)
    count = args.count if args.count > 0 else 1 << 30
    one_shot = args.count == 1
    try:
        # per-frame readline blocks interval seconds; pad the socket
        # timeout well past it so a healthy stream never times out
        with PlannerClient(address,
                           timeout=args.interval + 30.0) as client:
            for seq, frame in enumerate(
                    client.telemetry(count=count,
                                     interval_s=args.interval)):
                if args.json:
                    print(json.dumps(frame, sort_keys=True), flush=True)
                    continue
                if not one_shot:
                    sys.stdout.write("\x1b[2J\x1b[H")
                print(_render_top(frame, seq=seq, addr=args.addr),
                      flush=True)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0
    except ServiceRejection as exc:
        print(f"error: daemon at {args.addr} rejected telemetry "
              f"({exc.code}): {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot watch planner daemon at {args.addr}: {exc}",
              file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="KARMA planning service: plan models against memory "
                    "hierarchies, backed by a content-addressed plan "
                    "cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("plan", help="plan one config or a batch manifest")
    p.add_argument("--model", help="registered model name "
                                   "(see repro.models.REGISTRY)")
    p.add_argument("--batch", type=int, default=16, help="batch size")
    p.add_argument("--manifest", help="JSON file with a list of configs")
    p.add_argument("--hierarchy", choices=HIERARCHIES, default="none",
                   help="memory hierarchy preset")
    p.add_argument("--link", choices=LINKS, default="calibrated",
                   help="host<->device swap link preset")
    p.add_argument("--method", default="auto",
                   choices=("auto", "dp", "aco", "uniform"))
    p.add_argument("--placement", default="auto",
                   choices=("auto", "bandwidth", "pressure"))
    p.add_argument("--max-span", type=int, default=64)
    p.add_argument("--capacity", type=float, default=None,
                   help="device capacity override in bytes")
    p.add_argument("--no-recompute", action="store_true",
                   help="skip the Opt-2 recompute interleave")
    p.add_argument("--workers", type=int, default=1,
                   help="process workers: shards the portfolio sweep "
                        "(single config) or the manifest (batch)")
    p.add_argument("--cache-dir", default=None,
                   help="plan cache directory (default: "
                        "$KARMA_PLAN_CACHE_DIR or "
                        "~/.cache/karma-repro/plans)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the plan cache entirely")
    p.add_argument("--json", action="store_true",
                   help="emit results as JSON instead of a table")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="record planner spans + the predicted timeline "
                        "and write a Perfetto/Chrome trace JSON "
                        "(single --model only)")
    p.add_argument("--metrics", metavar="PATH", default=None,
                   help="write the process metrics snapshot as JSON "
                        "('-' for stdout)")
    p.add_argument("--server", metavar="ADDR", default=None,
                   help="plan via a running daemon ('serve'): a unix "
                        "socket path or host:port")
    p.add_argument("--deadline", type=float, default=None,
                   help="with --server: seconds to wait before the "
                        "daemon sheds this request")
    p.add_argument("--retries", type=int, default=0,
                   help="with --server: extra attempts after a "
                        "retryable rejection (shed queue, crashed "
                        "worker), with exponential backoff")
    p.set_defaults(func=_run_plan)

    s = sub.add_parser(
        "serve",
        help="run the planner daemon (admission control, hot cache "
             "tier, single-flight, optional cluster placement)")
    s.add_argument("--socket", default=None,
                   help="unix socket path to bind (or reach, with "
                        "--ping/--stop)")
    s.add_argument("--port", type=int, default=None,
                   help="localhost TCP port instead of a unix socket")
    s.add_argument("--ping", action="store_true",
                   help="client mode: check whether a daemon answers")
    s.add_argument("--wait", type=float, default=None,
                   help="with --ping: wait up to this many seconds for "
                        "the daemon to come up")
    s.add_argument("--stop", action="store_true",
                   help="client mode: ask a running daemon to shut down")
    s.add_argument("--queue-depth", type=int, default=16,
                   help="admission bound; beyond it requests are shed "
                        "with queue_full")
    s.add_argument("--service-workers", type=int, default=2,
                   help="daemon threads consuming the request queue")
    s.add_argument("--pool-workers", type=int, default=4,
                   help="planner workers shared by all in-flight "
                        "requests")
    s.add_argument("--max-request-workers", type=int, default=2,
                   help="cap on workers any single request may lease")
    s.add_argument("--deadline", type=float, default=None,
                   help="default per-request deadline in seconds")
    s.add_argument("--hot-capacity", type=int, default=128,
                   help="entries kept in the in-process hot LRU tier")
    s.add_argument("--cluster", choices=HIERARCHIES, default="none",
                   help="enable collocation-aware placement on this "
                        "shared hierarchy")
    s.add_argument("--devices", type=int, default=4,
                   help="device slots for cluster placement")
    s.add_argument("--cache-dir", default=None,
                   help="plan cache directory (the warm tier)")
    s.add_argument("--no-cache", action="store_true",
                   help="run without the on-disk warm tier")
    s.add_argument("--metrics", metavar="PATH", default=None,
                   help="write the service metrics snapshot as JSON "
                        "when the daemon stops ('-' for stdout)")
    s.add_argument("--chaos-rate", type=float, default=0.0,
                   help="chaos mode: probability a worker crashes per "
                        "dequeued request (served as a retryable "
                        "worker_crashed rejection + respawn)")
    s.add_argument("--chaos-first", type=int, default=0,
                   help="chaos mode: deterministically crash the first "
                        "N dequeued requests")
    s.add_argument("--chaos-seed", type=int, default=0,
                   help="seed for the chaos coin")
    s.set_defaults(func=_run_serve)

    e = sub.add_parser(
        "elastic",
        help="run a trace-driven churn scenario: preemptions/joins with "
             "checkpoint-backed recovery on a real data-parallel trainer")
    e.add_argument("--steps", type=int, default=12,
                   help="training steps")
    e.add_argument("--world", type=int, default=4,
                   help="starting world size")
    e.add_argument("--global-batch", type=int, default=12,
                   help="fixed global batch (must divide by every world "
                        "size the trace visits)")
    e.add_argument("--seed", type=int, default=0)
    e.add_argument("--preemptions", type=int, default=2,
                   help="synthetic trace: preempt events")
    e.add_argument("--joins", type=int, default=1,
                   help="synthetic trace: join events")
    e.add_argument("--slowdowns", type=int, default=0,
                   help="synthetic trace: slowdown events")
    e.add_argument("--dirty-rate", type=float, default=0.0,
                   help="synthetic trace: probability a preemption is "
                        "dirty (mid-iteration; forces checkpoint restart)")
    e.add_argument("--trace-file", default=None,
                   help="drive a recorded JSON trace instead of a "
                        "synthetic one")
    e.add_argument("--save-trace", metavar="PATH", default=None,
                   help="record the trace that was run as JSON")
    e.add_argument("--checkpoint-interval", type=int, default=3,
                   help="periodic checkpoint cadence in steps")
    e.add_argument("--checkpoint-dir", default=None,
                   help="checkpoint directory (default: a temp dir)")
    e.add_argument("--mode", choices=("auto", "replan", "degrade"),
                   default="auto",
                   help="recovery policy for clean world changes")
    e.add_argument("--json", action="store_true",
                   help="emit the scenario result as JSON")
    e.add_argument("--metrics", metavar="PATH", default=None,
                   help="write the process metrics snapshot as JSON "
                        "('-' for stdout)")
    e.set_defaults(func=_run_elastic)

    c = sub.add_parser("cache", help="inspect or clear the plan cache")
    c.add_argument("cache_command", choices=("info", "clear"))
    c.add_argument("--cache-dir", default=None)
    c.set_defaults(func=_run_cache)

    v = sub.add_parser(
        "validate",
        help="compare simulator-predicted vs runtime-measured stall "
             "fractions per resource")
    v.add_argument("--config", nargs="*", default=None,
                   help="validation config names (default: cnn gpt)")
    v.add_argument("--target-wall", type=float, default=0.4,
                   help="emulated wall-clock seconds per measured "
                        "iteration (sets the pacer's time scale)")
    v.add_argument("--seed", type=int, default=0)
    v.add_argument("--max-error", type=float, default=None,
                   help="exit non-zero if any per-resource stall-fraction "
                        "error exceeds this")
    v.add_argument("--list", action="store_true",
                   help="list the available validation configs")
    v.add_argument("--json", action="store_true",
                   help="emit reports as JSON instead of tables")
    v.add_argument("--trace", metavar="PATH", default=None,
                   help="write a Perfetto/Chrome trace JSON with planner "
                        "spans plus each config's predicted and measured "
                        "timelines")
    v.add_argument("--metrics", metavar="PATH", default=None,
                   help="write the process metrics snapshot as JSON "
                        "('-' for stdout)")
    v.add_argument("--calibration", metavar="PATH", default=None,
                   help="apply a calibration artifact (see 'calibrate') "
                        "when deriving each config's plan")
    v.set_defaults(func=_run_validate)

    cal = sub.add_parser(
        "calibrate",
        help="fit per-op compute scales and per-link latency/bandwidth "
             "from measured validation traces")
    cal.add_argument("--config", nargs="*", default=None,
                     help="validation config names (default: cnn gpt)")
    cal.add_argument("-o", "--output", default="calibration.json",
                     help="artifact path (default: calibration.json)")
    cal.add_argument("--target-wall", type=float, default=0.4,
                     help="emulated wall-clock seconds per measured "
                          "iteration (sets the pacer's time scale)")
    cal.add_argument("--seed", type=int, default=0)
    cal.add_argument("--check", action="store_true",
                     help="re-run validation with the fitted scales and "
                          "report the error before/after")
    cal.add_argument("--json", action="store_true",
                     help="emit the fit summary as JSON")
    cal.add_argument("--metrics", metavar="PATH", default=None,
                     help="write the process metrics snapshot as JSON "
                          "('-' for stdout)")
    cal.set_defaults(func=_run_calibrate)

    t = sub.add_parser(
        "trace",
        help="emit a Perfetto/Chrome trace JSON for one configuration")
    t.add_argument("config",
                   help="a validation config (cnn, gpt: full sim-vs-real "
                        "timelines) or a registered model name (planner "
                        "spans + predicted timeline)")
    t.add_argument("-o", "--output", default=None,
                   help="output path (default: trace_<config>.json)")
    t.add_argument("--batch", type=int, default=16,
                   help="batch size (registered-model configs)")
    t.add_argument("--hierarchy", choices=HIERARCHIES, default="none")
    t.add_argument("--link", choices=LINKS, default="calibrated")
    t.add_argument("--capacity", type=float, default=None,
                   help="device capacity override in bytes "
                        "(registered-model configs)")
    t.add_argument("--target-wall", type=float, default=0.4,
                   help="emulated wall-clock seconds for the measured "
                        "iteration (validation configs)")
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--cache-dir", default=None)
    t.add_argument("--no-cache", action="store_true",
                   help="bypass the plan cache")
    t.add_argument("--metrics", metavar="PATH", default=None,
                   help="write the process metrics snapshot as JSON "
                        "('-' for stdout)")
    t.add_argument("--server", metavar="ADDR", default=None,
                   help="distributed mode: plan via a running daemon "
                        "('serve') and stitch the client, daemon, and "
                        "pool-worker spans into one timeline "
                        "(registered-model configs)")
    t.add_argument("--deadline", type=float, default=None,
                   help="with --server: seconds to wait before the "
                        "daemon sheds this request")
    t.add_argument("--retries", type=int, default=0,
                   help="with --server: extra attempts after a "
                        "retryable rejection (shed queue, crashed "
                        "worker)")
    t.set_defaults(func=_run_trace)

    w = sub.add_parser(
        "top",
        help="live one-screen telemetry view of a running planner "
             "daemon (queue depth, hit ratios, latency percentiles)")
    w.add_argument("addr", help="daemon address: a unix socket path or "
                                "host:port")
    w.add_argument("--interval", type=float, default=1.0,
                   help="seconds between telemetry frames")
    w.add_argument("--count", type=int, default=0,
                   help="stop after N frames (0 = run until Ctrl-C)")
    w.add_argument("--json", action="store_true",
                   help="emit one JSON telemetry frame per line instead "
                        "of the screen view")
    w.set_defaults(func=_run_top)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module CLI convenience
    sys.exit(main())
