"""``python -m repro`` — the planning service front door.

Examples, benchmarks, and ad-hoc studies all need the same thing: a KARMA
plan for a (model, hardware) configuration, fast.  This CLI plans one
configuration or a batch manifest, reports cache hit/miss and search
wall-time per configuration, and shares the content-addressed plan cache
(:mod:`repro.cache`) with every other caller.

Usage::

    python -m repro plan --model resnet200 --batch 16
    python -m repro plan --model resnet200 --batch 16 --hierarchy abci
    python -m repro plan --manifest configs.json --workers 4
    python -m repro cache info
    python -m repro cache clear
    python -m repro validate
    python -m repro validate --config cnn gpt --target-wall 0.5 --json

A manifest is a JSON list of configuration objects (or ``{"configs":
[...]}``); each object takes the same keys as the single-config flags::

    [{"model": "resnet200", "batch": 16, "hierarchy": "abci"},
     {"model": "unet", "batch": 16}]

With ``--workers N`` a manifest is planned N configurations at a time in
separate processes (each full search is independent); a single
configuration instead shards its portfolio sweep across N workers, which
stays bit-identical to the serial sweep.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

HIERARCHIES = ("none", "two-tier", "abci", "tiny")
LINKS = ("calibrated", "pcie", "nvlink")


def _resolve_hierarchy(name: str):
    from .hardware.tiering import (
        abci_hierarchy,
        tiny_test_hierarchy,
        two_tier_hierarchy,
    )

    if name == "none":
        return None
    if name == "two-tier":
        return two_tier_hierarchy()
    if name == "abci":
        return abci_hierarchy()
    if name == "tiny":
        return tiny_test_hierarchy()
    raise ValueError(f"unknown hierarchy {name!r}; choose from {HIERARCHIES}")


def _resolve_transfer(link: str):
    from .hardware.interconnect import TransferModel
    from .hardware.spec import (
        abci_host,
        karma_swap_link,
        nvlink2,
        pcie_gen3_x16,
        v100_sxm2_16gb,
    )

    links = {"calibrated": karma_swap_link, "pcie": pcie_gen3_x16,
             "nvlink": nvlink2}
    if link not in links:
        raise ValueError(f"unknown link {link!r}; choose from {LINKS}")
    device = v100_sxm2_16gb()
    return device, TransferModel(link=links[link](), device=device,
                                 host=abci_host())


def plan_config(config: Dict[str, Any], *,
                cache_dir: Optional[str] = None,
                use_cache: bool = True,
                n_workers: int = 1) -> Dict[str, Any]:
    """Plan one configuration dict; returns a JSON-ready result record.

    This is the service call the CLI, examples, and benchmarks go
    through.  Module-level and argument-picklable so batch manifests can
    fan out across processes.
    """
    from .cache.plan_cache import PlanCache
    from .core.planner import plan
    from .hardware.tiering import STORAGE_TIER
    from .models.registry import build

    model = config["model"]
    batch = int(config["batch"])
    graph = build(model)
    device, transfer = _resolve_transfer(config.get("link", "calibrated"))
    hierarchy = _resolve_hierarchy(config.get("hierarchy", "none"))
    capacity = config.get("capacity")
    cache = None
    if use_cache:
        cache = PlanCache(cache_dir=Path(cache_dir) if cache_dir else None)

    t0 = time.perf_counter()
    kp = plan(graph, batch_size=batch, device=device, transfer=transfer,
              recompute=bool(config.get("recompute", True)),
              method=config.get("method", "auto"),
              max_span=int(config.get("max_span", 64)),
              capacity=float(capacity) if capacity is not None else None,
              hierarchy=hierarchy,
              placement_policy=config.get("placement", "auto"),
              cache=cache, n_workers=n_workers)
    wall = time.perf_counter() - t0

    return {
        "model": model,
        "batch": batch,
        "hierarchy": config.get("hierarchy", "none"),
        "method": kp.blocking.method,
        "cache": ("off" if cache is None
                  else "hit" if kp.cache_hit else "miss"),
        "cache_key": kp.cache_key,
        "wall_s": round(wall, 6),
        "search_s": round(kp.search_time, 6),
        "makespan_s": kp.blocking.objective,
        "blocks": kp.plan.num_blocks,
        "swapped": len(kp.plan.swapped),
        "recomputed": len(kp.plan.recomputed),
        "resident": len(kp.plan.resident),
        "storage_blocks": sorted(b for b, t in kp.plan.placements.items()
                                 if t >= STORAGE_TIER),
        "rejected_grid_points": len(kp.blocking.rejected),
        "plan_string": kp.plan.plan_string(),
    }


def _plan_config_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Process-pool entry for one manifest configuration.

    Never raises: a failed configuration reports an ``error`` record so
    one infeasible entry cannot sink the rest of the batch.
    """
    try:
        return plan_config(task["config"], cache_dir=task["cache_dir"],
                           use_cache=task["use_cache"],
                           n_workers=task.get("n_workers", 1))
    except Exception as exc:  # noqa: BLE001 - surfaced in the result record
        return {"model": task["config"].get("model", "?"),
                "batch": task["config"].get("batch", "?"),
                "error": f"{type(exc).__name__}: {exc}"}


def _load_manifest(path: Path) -> List[Dict[str, Any]]:
    data = json.loads(path.read_text())
    if isinstance(data, dict):
        data = data.get("configs", [])
    if not isinstance(data, list) or not all(isinstance(c, dict)
                                             for c in data):
        raise ValueError(f"manifest {path} must be a JSON list of config "
                         "objects (or {'configs': [...]})")
    return data


def _format_result(r: Dict[str, Any]) -> str:
    if "error" in r:
        return (f"  {r['model']:<14} batch {r['batch']:<5} "
                f"FAILED: {r['error']}")
    return (f"  {r['model']:<14} batch {r['batch']:<5} "
            f"cache={r['cache']:<4} wall={r['wall_s'] * 1e3:9.1f} ms  "
            f"search={r['search_s'] * 1e3:9.1f} ms  "
            f"blocks={r['blocks']:<3} "
            f"S/R/C={r['swapped']}/{r['resident']}/{r['recomputed']}")


def _run_plan(args: argparse.Namespace) -> int:
    if (args.manifest is None) == (args.model is None):
        print("error: provide exactly one of --model or --manifest",
              file=sys.stderr)
        return 2

    if args.manifest is not None:
        configs = _load_manifest(Path(args.manifest))
    else:
        configs = [{"model": args.model, "batch": args.batch,
                    "hierarchy": args.hierarchy, "method": args.method,
                    "recompute": not args.no_recompute,
                    "max_span": args.max_span, "placement": args.placement,
                    "link": args.link,
                    **({"capacity": args.capacity}
                       if args.capacity is not None else {})}]
    use_cache = not args.no_cache
    workers = max(1, args.workers)

    t0 = time.perf_counter()
    if args.manifest is not None and workers > 1 and len(configs) > 1:
        from concurrent.futures import ProcessPoolExecutor
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            ctx = mp.get_context("spawn")
        tasks = [{"config": c, "cache_dir": args.cache_dir,
                  "use_cache": use_cache} for c in configs]
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=ctx) as pool:
            results = list(pool.map(_plan_config_task, tasks))
    else:
        # single config (or serial manifest): the portfolio sweep inside
        # each plan gets the workers instead of the manifest level
        results = [_plan_config_task(
            {"config": c, "cache_dir": args.cache_dir,
             "use_cache": use_cache, "n_workers": workers})
            for c in configs]
    total = time.perf_counter() - t0

    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    else:
        print(f"planned {len(results)} configuration(s) in {total:.2f} s "
              f"({workers} worker(s), cache "
              f"{'off' if not use_cache else 'on'}):")
        for r in results:
            print(_format_result(r))
        hits = sum(1 for r in results if r.get("cache") == "hit")
        misses = sum(1 for r in results if r.get("cache") == "miss")
        errors = sum(1 for r in results if "error" in r)
        print(f"  -> {hits} cache hit(s), {misses} miss(es), "
              f"{errors} failure(s)")
    return 1 if any("error" in r for r in results) else 0


def _run_cache(args: argparse.Namespace) -> int:
    from .cache.plan_cache import PlanCache

    cache = PlanCache(cache_dir=Path(args.cache_dir)
                      if args.cache_dir else None)
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached plan(s) from {cache.cache_dir}")
        return 0
    entries = list(cache.keys())
    print(f"plan cache at {cache.cache_dir}: {len(entries)} entr(ies)")
    for key in entries[:20]:
        print(f"  {key}")
    if len(entries) > 20:
        print(f"  ... and {len(entries) - 20} more")
    return 0


def _run_validate(args: argparse.Namespace) -> int:
    from .eval.validation import (
        DEFAULT_CONFIGS,
        VALIDATION_CONFIGS,
        validate_many,
    )

    if args.list:
        print("validation configs:")
        for name, cfg in sorted(VALIDATION_CONFIGS.items()):
            print(f"  {name:<8} batch {cfg.batch_size:<4} "
                  f"link {cfg.link_bandwidth / 1e9:.0f} GB/s")
        return 0
    names = args.config or list(DEFAULT_CONFIGS)
    unknown = [n for n in names if n not in VALIDATION_CONFIGS]
    if unknown:
        print(f"error: unknown config(s) {unknown}; known: "
              f"{sorted(VALIDATION_CONFIGS)}", file=sys.stderr)
        return 2

    t0 = time.perf_counter()
    reports = validate_many(names, target_wall_s=args.target_wall,
                            seed=args.seed)
    total = time.perf_counter() - t0

    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2,
                         sort_keys=True))
    else:
        print("sim-vs-real stall validation (async runtime paced with the "
              "simulator's own durations):\n")
        for r in reports:
            print(r.table())
            print(f"  blocks={r.num_blocks}  "
                  f"makespan ratio (measured/predicted)="
                  f"{r.makespan_ratio:.3f}  "
                  f"max |error|={r.max_abs_error:.4f}\n")
        worst = max(r.max_abs_error for r in reports)
        print(f"validated {len(reports)} config(s) in {total:.2f} s; "
              f"worst per-resource stall-fraction error {worst:.4f}")
    if args.max_error is not None and any(
            r.max_abs_error > args.max_error for r in reports):
        print(f"error: stall-fraction error exceeds --max-error "
              f"{args.max_error}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="KARMA planning service: plan models against memory "
                    "hierarchies, backed by a content-addressed plan "
                    "cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("plan", help="plan one config or a batch manifest")
    p.add_argument("--model", help="registered model name "
                                   "(see repro.models.REGISTRY)")
    p.add_argument("--batch", type=int, default=16, help="batch size")
    p.add_argument("--manifest", help="JSON file with a list of configs")
    p.add_argument("--hierarchy", choices=HIERARCHIES, default="none",
                   help="memory hierarchy preset")
    p.add_argument("--link", choices=LINKS, default="calibrated",
                   help="host<->device swap link preset")
    p.add_argument("--method", default="auto",
                   choices=("auto", "dp", "aco", "uniform"))
    p.add_argument("--placement", default="auto",
                   choices=("auto", "bandwidth", "pressure"))
    p.add_argument("--max-span", type=int, default=64)
    p.add_argument("--capacity", type=float, default=None,
                   help="device capacity override in bytes")
    p.add_argument("--no-recompute", action="store_true",
                   help="skip the Opt-2 recompute interleave")
    p.add_argument("--workers", type=int, default=1,
                   help="process workers: shards the portfolio sweep "
                        "(single config) or the manifest (batch)")
    p.add_argument("--cache-dir", default=None,
                   help="plan cache directory (default: "
                        "$KARMA_PLAN_CACHE_DIR or "
                        "~/.cache/karma-repro/plans)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the plan cache entirely")
    p.add_argument("--json", action="store_true",
                   help="emit results as JSON instead of a table")
    p.set_defaults(func=_run_plan)

    c = sub.add_parser("cache", help="inspect or clear the plan cache")
    c.add_argument("cache_command", choices=("info", "clear"))
    c.add_argument("--cache-dir", default=None)
    c.set_defaults(func=_run_cache)

    v = sub.add_parser(
        "validate",
        help="compare simulator-predicted vs runtime-measured stall "
             "fractions per resource")
    v.add_argument("--config", nargs="*", default=None,
                   help="validation config names (default: cnn gpt)")
    v.add_argument("--target-wall", type=float, default=0.4,
                   help="emulated wall-clock seconds per measured "
                        "iteration (sets the pacer's time scale)")
    v.add_argument("--seed", type=int, default=0)
    v.add_argument("--max-error", type=float, default=None,
                   help="exit non-zero if any per-resource stall-fraction "
                        "error exceeds this")
    v.add_argument("--list", action="store_true",
                   help="list the available validation configs")
    v.add_argument("--json", action="store_true",
                   help="emit reports as JSON instead of tables")
    v.set_defaults(func=_run_validate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module CLI convenience
    sys.exit(main())
