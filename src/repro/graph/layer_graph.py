"""Layer dependency graphs: the model representation KARMA plans over.

KARMA's first workflow step (Fig. 1, step 1) builds a dependency graph of
the model; blocking, swapping and recompute decisions are then made over
*blocks of consecutive layers* in topological order.  :class:`LayerSpec`
captures everything the cost model (§III-C/III-D) needs: the layer kind,
per-sample input/output shapes, and kind-specific attributes (kernel size,
channels, heads, ...).  :class:`LayerGraph` is a DAG over those specs and
supports the three model families the paper targets: CNNs (linear chains +
affine residual skips), Transformers, and fully-convolutional U-Nets with
long skips between the contracting and expansive paths (§III-F.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx


class LayerKind(Enum):
    """Operator families with dedicated cost formulas in §III-C."""

    INPUT = "input"
    CONV2D = "conv2d"
    RELU = "relu"
    GELU = "gelu"
    POOL_MAX = "pool_max"
    POOL_AVG = "pool_avg"
    BATCHNORM = "batchnorm"
    LAYERNORM = "layernorm"
    LSTM = "lstm"
    ATTENTION = "attention"
    LINEAR = "linear"
    SOFTMAX = "softmax"
    DROPOUT = "dropout"
    EMBEDDING = "embedding"
    ADD = "add"            # element-wise tensor add (residual join)
    CONCAT = "concat"      # channel concat (U-Net skip join)
    RESHAPE = "reshape"    # flatten / view; zero-cost metadata op
    UPSAMPLE = "upsample"  # transposed conv / bilinear up (U-Net)
    LOSS = "loss"


# Kinds that carry trainable parameters.
PARAMETRIC_KINDS = frozenset({
    LayerKind.CONV2D, LayerKind.BATCHNORM, LayerKind.LAYERNORM,
    LayerKind.LSTM, LayerKind.ATTENTION, LayerKind.LINEAR,
    LayerKind.EMBEDDING, LayerKind.UPSAMPLE,
})

# Kinds that are cheap to recompute relative to their activation size
# (SuperNeurons' heuristic recomputes exactly these, §II-A.3).
CHEAP_TO_RECOMPUTE = frozenset({
    LayerKind.RELU, LayerKind.GELU, LayerKind.BATCHNORM, LayerKind.LAYERNORM,
    LayerKind.DROPOUT, LayerKind.SOFTMAX, LayerKind.ADD, LayerKind.RESHAPE,
    LayerKind.CONCAT, LayerKind.POOL_MAX, LayerKind.POOL_AVG,
})


@dataclass(frozen=True)
class LayerSpec:
    """A single layer: identity, shapes, and kind-specific attributes.

    ``input_shape`` / ``output_shape`` are per-sample shapes (no batch
    dimension): ``(C, H, W)`` for vision layers, ``(T, D)`` for sequence
    layers, ``(D,)`` for vectors.  ``attrs`` carries what the analytic FLOP
    formulas need, e.g. ``kernel=3, stride=1, in_channels=64`` for a conv.
    """

    name: str
    kind: LayerKind
    input_shape: Tuple[int, ...]
    output_shape: Tuple[int, ...]
    attrs: Dict[str, float] = field(default_factory=dict, hash=False, compare=False)

    @property
    def input_elems(self) -> int:
        return int(math.prod(self.input_shape)) if self.input_shape else 0

    @property
    def output_elems(self) -> int:
        return int(math.prod(self.output_shape)) if self.output_shape else 0

    @property
    def is_parametric(self) -> bool:
        return self.kind in PARAMETRIC_KINDS

    def attr(self, key: str, default: Optional[float] = None) -> float:
        if key in self.attrs:
            return self.attrs[key]
        if default is None:
            raise KeyError(f"layer {self.name!r} ({self.kind.value}) missing attr {key!r}")
        return default


class GraphValidationError(ValueError):
    """Raised for malformed model graphs (cycles, dangling edges, ...)."""


class LayerGraph:
    """A validated DAG of :class:`LayerSpec` nodes in topological order.

    Layers are stored in the order they were added, which is required to be
    a valid topological order (construction fails otherwise).  That order is
    the "layer index" space KARMA's contiguous blocking operates in.
    """

    def __init__(self, name: str):
        self.name = name
        self._layers: List[LayerSpec] = []
        self._index: Dict[str, int] = {}
        self._g = nx.DiGraph()

    # -- construction ------------------------------------------------------

    def add_layer(self, spec: LayerSpec,
                  inputs: Sequence[str] = ()) -> LayerSpec:
        """Append ``spec``, wiring data edges from each name in ``inputs``."""
        if spec.name in self._index:
            raise GraphValidationError(f"duplicate layer name {spec.name!r}")
        for src in inputs:
            if src not in self._index:
                raise GraphValidationError(
                    f"layer {spec.name!r} depends on unknown layer {src!r} "
                    "(layers must be added in topological order)")
        self._index[spec.name] = len(self._layers)
        self._layers.append(spec)
        self._g.add_node(spec.name)
        for src in inputs:
            self._g.add_edge(src, spec.name)
        return spec

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self._layers)

    def __getitem__(self, idx: int) -> LayerSpec:
        return self._layers[idx]

    @property
    def layers(self) -> List[LayerSpec]:
        return list(self._layers)

    def index_of(self, name: str) -> int:
        return self._index[name]

    def layer(self, name: str) -> LayerSpec:
        return self._layers[self._index[name]]

    def predecessors(self, name: str) -> List[str]:
        return sorted(self._g.predecessors(name), key=self.index_of)

    def successors(self, name: str) -> List[str]:
        return sorted(self._g.successors(name), key=self.index_of)

    def edges(self) -> List[Tuple[str, str]]:
        return [(u, v) for u, v in self._g.edges()]

    @property
    def nx_graph(self) -> nx.DiGraph:
        return self._g.copy()

    def validate(self) -> None:
        """Check DAG-ness and that insertion order is topological."""
        if not nx.is_directed_acyclic_graph(self._g):
            raise GraphValidationError(f"{self.name}: graph has a cycle")
        for u, v in self._g.edges():
            if self._index[u] >= self._index[v]:
                raise GraphValidationError(
                    f"{self.name}: edge {u!r}->{v!r} violates insertion "
                    "(topological) order")
        for i, spec in enumerate(self._layers):
            if i > 0 and not list(self._g.predecessors(spec.name)):
                raise GraphValidationError(
                    f"{self.name}: layer {spec.name!r} is disconnected")

    # -- structure analysis (for §III-F.4 non-linear model support) --------

    def skip_edges(self) -> List[Tuple[str, str]]:
        """Edges that jump over at least one layer in index order."""
        return [(u, v) for u, v in self._g.edges()
                if self._index[v] - self._index[u] > 1]

    def skip_span(self, edge: Tuple[str, str]) -> int:
        u, v = edge
        return self._index[v] - self._index[u]

    def is_linear_chain(self) -> bool:
        return not self.skip_edges()

    def longest_skip(self) -> int:
        spans = [self.skip_span(e) for e in self.skip_edges()]
        return max(spans, default=0)

    def consumers_after(self, name: str) -> int:
        """Index of the furthest consumer of ``name`` (its own index if none).

        KARMA's planner uses this to know how long an activation must stay
        live: U-Net long skips yield consumers far in the expansive path.
        """
        succ = [self._index[s] for s in self._g.successors(name)]
        return max(succ, default=self._index[name])

    def canonical_dict(self) -> Dict[str, object]:
        """A deterministic, JSON-ready description of the graph.

        Two graphs with identical structure produce byte-identical
        canonical JSON (``json.dumps(..., sort_keys=True)``) in any
        process on any platform — the plan cache digests this to key
        cached plans, so it must capture everything the planner reads:
        layer identities, kinds, shapes, attrs, and the edge set.
        """
        return {
            "name": self.name,
            "layers": [
                {
                    "name": spec.name,
                    "kind": spec.kind.value,
                    "input_shape": list(spec.input_shape),
                    "output_shape": list(spec.output_shape),
                    "attrs": {k: spec.attrs[k] for k in sorted(spec.attrs)},
                }
                for spec in self._layers
            ],
            "edges": sorted(
                [u, v] for u, v in self._g.edges()),
        }

    def describe(self) -> str:
        lines = [f"LayerGraph {self.name!r}: {len(self)} layers, "
                 f"{len(self.skip_edges())} skip edge(s)"]
        for i, spec in enumerate(self._layers):
            preds = ",".join(self.predecessors(spec.name)) or "-"
            lines.append(f"  [{i:4d}] {spec.name:<28s} {spec.kind.value:<10s} "
                         f"{spec.input_shape}->{spec.output_shape}  <- {preds}")
        return "\n".join(lines)


def chain(name: str, specs: Iterable[LayerSpec]) -> LayerGraph:
    """Build a purely sequential :class:`LayerGraph` from ``specs``."""
    g = LayerGraph(name)
    prev: Optional[str] = None
    for spec in specs:
        g.add_layer(spec, inputs=[prev] if prev is not None else [])
        prev = spec.name
    g.validate()
    return g
