"""Graph traversal utilities: liveness, checkpoints, and block legality.

These helpers answer the questions KARMA's planner asks of a model graph:

* how long must each activation stay resident (liveness horizon)?
* which layer indices are legal *checkpoint* boundaries (every in-edge of
  later layers originates at or before the boundary)?
* is a given contiguous partition legal w.r.t. skip connections, i.e. do all
  cross-block edges come from the immediately preceding block (§III-F.4)?
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .layer_graph import LayerGraph


def liveness_horizon(graph: LayerGraph) -> Dict[str, int]:
    """For each layer, the index of its last consumer (itself if none).

    The activation of layer ``l`` must be available (resident or
    recomputable) until ``horizon[l]`` has executed its forward pass, and
    again during the backward pass of every consumer.
    """
    return {spec.name: graph.consumers_after(spec.name) for spec in graph}


def checkpoint_boundaries(graph: LayerGraph) -> List[int]:
    """Indices ``i`` such that cutting after layer ``i`` crosses no skip edge.

    A boundary after index ``i`` is a valid checkpoint if no edge jumps from
    ``<= i`` to ``> i+1``'s strict interior — formally: every edge (u, v)
    with ``index(u) <= i < index(v)`` must satisfy ``index(v) == i + 1``
    *or* originate exactly at ``i``.  We use the weaker, standard condition:
    no edge (u, v) with ``index(u) < i`` and ``index(v) > i``.  The final
    boundary (after the last layer) is always valid.
    """
    n = len(graph)
    # max_reach[i] = furthest consumer index of any layer with index <= i
    max_reach = [0] * n
    reach = 0
    for i, spec in enumerate(graph):
        reach = max(reach, graph.consumers_after(spec.name))
        max_reach[i] = reach
    return [i for i in range(n) if max_reach[i] <= i + 1 or i == n - 1]


def partition_is_legal(graph: LayerGraph,
                       boundaries: Sequence[int]) -> Tuple[bool, str]:
    """Check that a contiguous partition respects block-to-block dataflow.

    ``boundaries`` are the exclusive end indices of each block, e.g.
    ``[3, 7, 10]`` partitions layers ``0..2 | 3..6 | 7..9``.  The paper's
    constraint (observed in §III-F.4) is that every inbound edge of a block
    originates in the *same* or the *immediately preceding* block; edges
    that jump over a whole block would force premature swap-ins.  Blocks
    violating this are still executable but must be marked for recompute —
    this predicate is what flags them.
    """
    if not boundaries or boundaries[-1] != len(graph):
        return False, "boundaries must end at len(graph)"
    if any(b <= 0 for b in boundaries) or list(boundaries) != sorted(set(boundaries)):
        return False, "boundaries must be strictly increasing positive indices"
    block_of: Dict[int, int] = {}
    start = 0
    for bi, end in enumerate(boundaries):
        for i in range(start, end):
            block_of[i] = bi
        start = end
    for u, v in graph.edges():
        bu = block_of[graph.index_of(u)]
        bv = block_of[graph.index_of(v)]
        if bv - bu > 1:
            return False, (f"edge {u!r}->{v!r} jumps from block {bu} to "
                           f"block {bv}")
    return True, "ok"


def blocks_with_long_skips(graph: LayerGraph,
                           boundaries: Sequence[int]) -> List[int]:
    """Block indices whose activations feed a block more than one step ahead.

    For U-Net-style graphs these are the contracting-path blocks whose
    outputs are needed deep in the expansive path; KARMA's second
    optimization marks them for recompute rather than premature swap-in
    (§III-F.4).
    """
    block_of: Dict[int, int] = {}
    start = 0
    for bi, end in enumerate(boundaries):
        for i in range(start, end):
            block_of[i] = bi
        start = end
    flagged = set()
    for u, v in graph.edges():
        bu = block_of[graph.index_of(u)]
        bv = block_of[graph.index_of(v)]
        if bv - bu > 1:
            flagged.add(bu)
    return sorted(flagged)


def contiguous_blocks(boundaries: Sequence[int]) -> List[Tuple[int, int]]:
    """Convert exclusive end indices into ``(start, end)`` half-open ranges."""
    out: List[Tuple[int, int]] = []
    start = 0
    for end in boundaries:
        if end <= start:
            raise ValueError(f"non-increasing boundary {end} after {start}")
        out.append((start, end))
        start = end
    return out
