"""Model dependency-graph substrate (Fig. 1, step 1 of the KARMA workflow)."""

from .layer_graph import (
    CHEAP_TO_RECOMPUTE,
    PARAMETRIC_KINDS,
    GraphValidationError,
    LayerGraph,
    LayerKind,
    LayerSpec,
    chain,
)
from .traversal import (
    blocks_with_long_skips,
    checkpoint_boundaries,
    contiguous_blocks,
    liveness_horizon,
    partition_is_legal,
)

__all__ = [
    "LayerKind", "LayerSpec", "LayerGraph", "GraphValidationError", "chain",
    "PARAMETRIC_KINDS", "CHEAP_TO_RECOMPUTE",
    "liveness_horizon", "checkpoint_boundaries", "partition_is_legal",
    "blocks_with_long_skips", "contiguous_blocks",
]
