#!/usr/bin/env python
"""Docs quality gate: links, docstring coverage, paper-mapping coverage.

Three checks, all offline:

1. **link check** — every relative markdown link in ``docs/*.md`` and
   ``README.md`` must point at an existing file (and, for ``#fragment``
   links, at an existing heading in the target); external ``http(s)``
   URLs are only format-checked, never fetched.
2. **docstring coverage** — every public function, class and method
   defined in ``repro.core`` and ``repro.runtime`` must carry a
   docstring (the public API surface the docs promise is documented).
3. **paper-mapping coverage** — every committed
   ``benchmarks/baselines/BENCH_*.json`` artifact must be referenced in
   ``docs/paper_mapping.md`` (the acceptance rule of the docs suite).

Exit status: 0 when clean, 1 with findings (one line each).

Usage::

    python tools/check_docs.py
"""

from __future__ import annotations

import inspect
import re
import sys
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
sys.path.insert(0, str(REPO / "src"))

#: Packages whose public surface must be documented.
COVERED_PACKAGES = ("repro.core", "repro.runtime", "repro.obs",
                    "repro.service", "repro.elastic")

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slug(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\s-]", "", slug)
    return re.sub(r"\s+", "-", slug)


def check_links() -> List[str]:
    findings: List[str] = []
    sources = sorted(DOCS.glob("*.md")) + [REPO / "README.md"]
    for source in sources:
        text = source.read_text()
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            rel = source.relative_to(REPO)
            if path_part:
                resolved = (source.parent / path_part).resolve()
                if not resolved.exists():
                    findings.append(
                        f"{rel}: broken link -> {target}")
                    continue
            else:
                resolved = source
            if fragment and resolved.suffix == ".md":
                headings = [_slug(h) for h in
                            _HEADING_RE.findall(resolved.read_text())]
                if fragment not in headings:
                    findings.append(
                        f"{rel}: broken anchor -> {target}")
    return findings


def _public_members(module) -> List[tuple]:
    """(qualname, obj) for everything the module itself defines publicly."""
    out = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented where it is defined
        out.append((f"{module.__name__}.{name}", obj))
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_"):
                    continue
                if isinstance(member, property):
                    continue  # property getters read as attributes
                if isinstance(member, (staticmethod, classmethod)):
                    member = member.__func__  # unwrap the descriptor
                if inspect.isfunction(member):
                    out.append(
                        (f"{module.__name__}.{name}.{mname}", member))
    return out


def check_docstrings() -> List[str]:
    import importlib
    import pkgutil

    findings: List[str] = []
    for pkg_name in COVERED_PACKAGES:
        pkg = importlib.import_module(pkg_name)
        module_names = [pkg_name] + [
            f"{pkg_name}.{info.name}"
            for info in pkgutil.iter_modules(pkg.__path__)]
        for module_name in module_names:
            module = importlib.import_module(module_name)
            for qualname, obj in _public_members(module):
                doc = inspect.getdoc(obj)
                if not doc or not doc.strip():
                    findings.append(f"{qualname}: missing docstring")
    return findings


def check_paper_mapping() -> List[str]:
    mapping = (DOCS / "paper_mapping.md").read_text()
    findings: List[str] = []
    for artifact in sorted((REPO / "benchmarks" / "baselines")
                           .glob("BENCH_*.json")):
        if artifact.name not in mapping:
            findings.append(
                f"docs/paper_mapping.md: committed baseline "
                f"{artifact.name} is not mapped to a paper artifact")
    return findings


def main() -> int:
    findings = check_links() + check_docstrings() + check_paper_mapping()
    if findings:
        print(f"docs gate: {len(findings)} finding(s)")
        for f in findings:
            print(f"  {f}")
        return 1
    print("docs gate: links, docstring coverage and paper mapping all clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
