#!/usr/bin/env python
"""Observability-name gate: src metric/span names <-> docs tables.

Every metric (``METRICS.counter/gauge/histogram``) and dotted span
(``TRACER.span/record``) name emitted anywhere under ``src/`` must be
documented in the metric/span tables of ``docs/observability.md``,
``docs/service.md`` or ``docs/elastic.md`` — and every dotted name
those tables promise must actually be emitted by ``src/``.  Both
directions, so the docs can neither rot behind the code nor advertise
telemetry that does not exist.

Matching rules (both sides are normalized first):

* f-string interpolations (``{expr}``) and docs placeholders
  (``<link>``, ``<i>``) normalize to the wildcard segment ``<x>``,
  which matches any text on the other side;
* a docs token ending in ``.*`` (e.g. ``service.*``) is a *family
  pointer* to a detailed table elsewhere — it is exempt from the
  must-be-emitted check but does **not** blanket-cover src names, so
  a new ``service.foo`` still needs its own table row;
* a docs table token starting with ``.`` (the ``/ .warm / .cold``
  shorthand) expands against the previous full token on its line;
* only *dotted* names are checked — bare span names like ``plan`` or
  per-op runtime spans (``F3``, ``fence:<x>``) have no stable dotted
  family to table.

Exit status: 0 when clean, 1 with findings (one line each).

Usage::

    python tools/check_obs_names.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DOCS = [REPO / "docs" / "observability.md",
        REPO / "docs" / "service.md",
        REPO / "docs" / "elastic.md"]

_METRIC_RE = re.compile(
    r"METRICS\.(?:counter|gauge|histogram)\(\s*f?\"([^\"]+)\"")
_SPAN_RE = re.compile(r"TRACER\.(?:span|record)\(\s*f?\"([^\"]+)\"")
_BACKTICK_RE = re.compile(r"`([^`]+)`")
_INTERP_RE = re.compile(r"\{[^{}]*\}")
_PLACEHOLDER_RE = re.compile(r"<[^<>]+>")
#: A documentable telemetry name: dotted lowercase segments, with
#: optional wildcard/placeholder/bracket decorations.
_NAME_RE = re.compile(r"^\.?[a-z0-9_<>\[\]*x-]+(\.[a-z0-9_<>\[\]*x-]+)+$"
                      r"|^\.[a-z0-9_<>\[\]*x-]+$")


def _normalize(name: str) -> str:
    """Collapse f-string interpolations and ``<...>`` placeholders."""
    return _PLACEHOLDER_RE.sub("<x>", _INTERP_RE.sub("<x>", name))


def src_names() -> Dict[str, str]:
    """name -> "file:line" for every dotted telemetry name in src."""
    out: Dict[str, str] = {}
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        for regex in (_METRIC_RE, _SPAN_RE):
            for match in regex.finditer(text):
                name = _normalize(match.group(1))
                if "." not in name.replace("<x>", ""):
                    continue  # no stable dotted family (e.g. fence:<x>)
                line = text[:match.start()].count("\n") + 1
                out.setdefault(
                    name, f"{path.relative_to(REPO)}:{line}")
    return out


def doc_tokens() -> Tuple[Set[str], Dict[str, str]]:
    """(all backticked dotted tokens, table tokens -> "file:line")."""
    everywhere: Set[str] = set()
    tables: Dict[str, str] = {}
    for doc in DOCS:
        for lineno, line in enumerate(doc.read_text().splitlines(), 1):
            last_full = ""
            for raw in _BACKTICK_RE.findall(line):
                token = raw.strip()
                if not _NAME_RE.match(token) or "/" in token:
                    continue
                if token.startswith("."):
                    if not last_full:
                        continue  # shorthand with nothing to expand
                    head, _, _ = last_full.rpartition(".")
                    token = head + token
                else:
                    last_full = token
                token = _normalize(token)
                everywhere.add(token)
                if line.lstrip().startswith("|"):
                    tables.setdefault(
                        token, f"{doc.relative_to(REPO)}:{lineno}")
    return everywhere, tables


def _segments_match(pattern: str, name: str) -> bool:
    """Dotted-segment match where ``<x>`` wildcards within a segment."""
    p_segs, n_segs = pattern.split("."), name.split(".")
    if len(p_segs) != len(n_segs):
        return False
    for p, n in zip(p_segs, n_segs):
        if p == n:
            continue
        regex = re.escape(p).replace(re.escape("<x>"), ".+")
        if not re.fullmatch(regex, n):
            return False
    return True


def _covered(name: str, tokens: Set[str]) -> bool:
    for token in tokens:
        if token.endswith(".*"):
            continue  # family pointers never blanket-cover names
        if _segments_match(token, name) or _segments_match(name, token):
            return True
    return False


def main() -> int:
    emitted = src_names()
    documented, tabled = doc_tokens()
    findings: List[str] = []
    for name, where in sorted(emitted.items()):
        if not _covered(name, documented):
            findings.append(
                f"{where}: `{name}` is emitted but not documented in "
                "the observability/service/elastic tables")
    wildcards = {t for t in tabled if t.endswith(".*")}
    for token, where in sorted(tabled.items()):
        if token in wildcards:
            continue  # family rows point at the detailed tables
        if not _covered(token, set(emitted)):
            findings.append(
                f"{where}: `{token}` is documented but never emitted "
                "under src/")
    if findings:
        print(f"obs-name gate: {len(findings)} finding(s)")
        for finding in findings:
            print(f"  {finding}")
        return 1
    print(f"obs-name gate: {len(emitted)} emitted name(s) documented, "
          f"{len(tabled)} documented name(s) emitted")
    return 0


if __name__ == "__main__":
    sys.exit(main())
