"""Fig. 2: the three swap strategies on the illustrative 6-block chain
(swap time = 2x compute, as in the figure's caption).

(a) vDNN/ooc_cuDNN family: eager swap of everything incl. the tail;
(b) capacity-based: resident suffix + eager prefetch;
(c) capacity-based + interleaved recompute.
"""


from repro.core import BlockPolicy, make_plan
from repro.costs.profiler import CostModel
from repro.graph import LayerKind, LayerSpec, chain
from repro.hardware import TransferModel, abci_host, v100_sxm2_16gb
from repro.hardware.spec import LinkSpec
from repro.sim import simulate_plan

R, S, C = BlockPolicy.RESIDENT, BlockPolicy.SWAPPED, BlockPolicy.RECOMPUTED


def _six_block_platform():
    """Six identical blocks; the link is tuned so swap = 2x compute."""
    device = v100_sxm2_16gb()
    host = abci_host()
    specs = [LayerSpec("input", LayerKind.INPUT, (1,), (1,))]
    # one linear layer per block with a fixed compute/stash ratio
    for i in range(6):
        specs.append(LayerSpec(f"l{i}", LayerKind.LINEAR, (4096,), (4096,),
                               {"in_features": 4096, "out_features": 4096}))
    graph = chain("fig2", specs)
    # pick bandwidth so block swap time ~= 2x block compute time
    probe = CostModel(graph, device,
                      TransferModel(link=LinkSpec("probe", 1e9), device=device,
                                    host=host), batch_size=256)
    t_comp = probe.block_fw_time(1, 2) + probe.block_bw_time(1, 2)
    stash = probe.block_activation_bytes(1, 2)
    bw = stash / (2.0 * t_comp)
    transfer = TransferModel(link=LinkSpec("fig2-link", bw, latency=0.0),
                             device=device, host=host)
    cost = CostModel(graph, device, transfer, batch_size=256)
    blocks = [(0, 1)] + [(i, i + 1) for i in range(1, 7)]
    capacity = cost.persistent_bytes() + int(3.2 * stash)
    return graph, cost, blocks, capacity


def _run(policies, cost, blocks, capacity, prefetch):
    plan = make_plan("fig2", 256, blocks, policies, prefetch=prefetch)
    return simulate_plan(plan, cost, capacity), plan


def test_fig2_strategy_comparison(benchmark, bench_writer):
    graph, cost, blocks, capacity = _six_block_platform()
    pol_a = [S] * 7                      # (a) eager swap of everything
    pol_b = [S, S, S, S, S, R, R]        # (b) capacity-based suffix
    pol_c = [S, S, C, S, C, R, R]        # (c) + interleaved recompute
    res_a, _ = _run(pol_a, cost, blocks, capacity, "one_ahead")
    res_b, plan_b = _run(pol_b, cost, blocks, capacity, "eager")
    res_c, plan_c = _run(pol_c, cost, blocks, capacity, "eager")
    benchmark(lambda: _run(pol_c, cost, blocks, capacity, "eager"))
    print()
    print("Fig. 2 — swap strategies (6-block chain, swap ~ 2x compute):")
    for name, res in (("(a) eager swap-all (vDNN family)", res_a),
                      ("(b) capacity-based (KARMA)", res_b),
                      ("(c) capacity-based + recompute", res_c)):
        print(f"  {name:36s} makespan {res.makespan * 1e3:8.2f} ms  "
              f"occupancy {res.gpu_occupancy * 100:5.1f}%  "
              f"stall {res.total_stall * 1e3:7.2f} ms")
    print(f"  plan (c): {plan_c.plan_string()}")
    bench_writer.emit("fig2_strategies", {
        "makespan_s.eager_swap_all": res_a.makespan,
        "makespan_s.capacity_based": res_b.makespan,
        "makespan_s.capacity_plus_recompute": res_c.makespan,
    })
    assert res_b.makespan < res_a.makespan, "capacity-based must beat eager"
    assert res_c.makespan <= res_b.makespan + 1e-12
