"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation section, printing the rows/series the paper reports, and times a
representative kernel with pytest-benchmark.  Sweeps default to a reduced
grid so the suite completes in minutes; set ``KARMA_BENCH_FULL=1`` for the
full paper grids.

Besides the printed tables, every bench emits a machine-readable
``BENCH_<name>.json`` artifact through the shared :class:`BenchWriter`
fixture — the perf-trajectory input the ROADMAP tooling tracks across PRs.
Artifacts land in the repo root by default; override with
``KARMA_BENCH_DIR``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

import pytest


def full_grids() -> bool:
    return os.environ.get("KARMA_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def grids():
    return full_grids()


class BenchWriter:
    """Writes one ``BENCH_<name>.json`` per benchmark module.

    ``emit`` merges repeated calls for the same name (several tests in one
    module contribute sections to one artifact) and rewrites the file each
    time, so partially-failed runs still leave the sections that completed.
    """

    def __init__(self, out_dir: Path):
        self.out_dir = out_dir
        self._payloads: Dict[str, dict] = {}

    def emit(self, name: str, payload: dict) -> Path:
        """Add ``payload``'s keys to the ``BENCH_<name>.json`` artifact."""
        record = self._payloads.setdefault(name, {
            "bench": name,
            "grid": "full" if full_grids() else "reduced",
            "unix_time": int(time.time()),
            "metrics": {},
        })
        record["metrics"].update(payload)
        path = self.out_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True,
                                   default=str) + "\n")
        return path


@pytest.fixture(scope="session")
def bench_writer() -> BenchWriter:
    out = os.environ.get("KARMA_BENCH_DIR")
    out_dir = Path(out) if out else Path(__file__).resolve().parent.parent
    out_dir.mkdir(parents=True, exist_ok=True)
    return BenchWriter(out_dir)


def pytest_configure(config):
    """Show each bench's captured stdout (the regenerated tables/figures
    are the point of the suite): force the -rA report for bench runs."""
    chars = config.option.reportchars or ""
    if "A" not in chars:
        config.option.reportchars = chars + "A"
