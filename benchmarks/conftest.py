"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation section, printing the rows/series the paper reports, and times a
representative kernel with pytest-benchmark.  Sweeps default to a reduced
grid so the suite completes in minutes; set ``KARMA_BENCH_FULL=1`` for the
full paper grids.
"""

from __future__ import annotations

import os

import pytest


def full_grids() -> bool:
    return os.environ.get("KARMA_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def grids():
    return full_grids()


def pytest_configure(config):
    """Show each bench's captured stdout (the regenerated tables/figures
    are the point of the suite): force the -rA report for bench runs."""
    chars = config.option.reportchars or ""
    if "A" not in chars:
        config.option.reportchars = chars + "A"
