"""Fig. 5: single-GPU throughput (samples/s) vs batch size for the six
Table III models under each method, plus the §IV-B 1.52x headline summary.

Reduced grid by default (three models, three batch points); set
``KARMA_BENCH_FULL=1`` for all six panels over their full x-axes.
"""

import pytest

from repro.eval import fig5_sweep, karma_speedup_summary, render_series

METHODS = ("in-core", "vdnn++", "superneurons", "checkmate",
           "karma", "karma+recompute")


@pytest.fixture(scope="module")
def sweep(grids):
    if grids:
        return fig5_sweep(methods=METHODS)
    return fig5_sweep(model_names=("resnet50", "resnet200", "unet"),
                      methods=METHODS, batch_limit=3)


def test_fig5_throughput_panels(benchmark, sweep):
    points = sweep
    models = sorted({p.model for p in points})
    print()
    for model in models:
        mp = [p for p in points if p.model == model]
        xs = sorted({p.batch_size for p in mp})
        series = {}
        for method in METHODS:
            vals = []
            for x in xs:
                match = [p for p in mp
                         if p.method == method and p.batch_size == x]
                vals.append(match[0].samples_per_sec
                            if match and match[0].feasible else None)
            series[method] = vals
        print(render_series(f"Fig. 5 — {model} (samples/s)", xs, series,
                            x_label="batch"))
        print()
    # representative kernel for the timing harness
    from repro.eval import run_method
    from repro.models import REGISTRY
    graph = REGISTRY["resnet200"].builder()
    benchmark(run_method, graph, "checkmate", 12)

    # shape assertions: in-core only at the first batch; KARMA+R leads
    for model in models:
        mp = [p for p in points if p.model == model]
        xs = sorted({p.batch_size for p in mp})
        incore = {p.batch_size: p.feasible for p in mp
                  if p.method == "in-core"}
        assert incore[xs[0]], f"{model}: first batch must fit in-core"
        assert not any(incore[x] for x in xs[1:]), \
            f"{model}: only the first batch size fits in-core"


def test_fig5_karma_speedup_headline(benchmark, sweep, bench_writer):
    summary = benchmark(karma_speedup_summary, sweep)
    print()
    print("§IV-B headline — KARMA w/ recompute vs best competing method "
          "(geometric mean over out-of-core points):")
    for k, v in summary.items():
        print(f"  {k:24s} {v:.2f}x")
    bench_writer.emit("fig5_single_gpu", dict(summary))
    assert summary["speedup[mean]"] >= 1.0, \
        "KARMA must at least match the best competing method on average"
