"""Asynchronous runtime benchmarks: overlap speedup and sim fidelity.

The async executor's reason to exist is hiding transfers behind compute
(§III-H / Fig. 6: swaps overlap compute, out-of-core approaches in-core
speed).  This bench gates that end to end:

1. **overlap speedup** — one swap-bound 3-tier plan (every interior
   block swapped, one routed through NVMe), paced with modeled durations
   where the two-way swap traffic exceeds each block's compute, executed
   by the synchronous oracle and the asynchronous executor.  Wall-clock
   is min-of-N; the hard floor is **async >= 1.3x sync**, and gradients
   from the timed runs are asserted byte-identical.
2. **sim fidelity** — the measured stall profile of the async run vs the
   event simulation of the exact same op durations: per-resource stall
   fractions must agree within a few points of makespan (the
   ``python -m repro validate`` loop, gated).

Emits ``BENCH_async_runtime.json``; the overlap speedup and measured
occupancy are key metrics with committed baselines (headroomed — the
in-bench asserts are the hard floor, the CI gate catches drift on top).
"""

import time

import numpy as np

from repro.core import BlockPolicy, make_plan
from repro.hardware import GiB, TieredMemorySpace
from repro.models.builder import GraphBuilder
from repro.nn import ExecutableModel
from repro.runtime import (
    AsyncOutOfCoreExecutor,
    OutOfCoreExecutor,
    TransferPacer,
)
from repro.sim import compile_plan, simulate, stall_profile
from repro.sim.trainer_sim import BlockCosts

from tests.helpers import uniform_blocks

S, R = BlockPolicy.SWAPPED, BlockPolicy.RESIDENT

REPEATS = 3
#: modeled per-block durations (seconds, time_scale=1): swap-bound —
#: 20 ms of two-way swap traffic per block vs 8+16 ms of compute.
#: examples/async_overlap.py inlines this fixture (examples cannot
#: import bench modules); keep the two in sync when retuning.
FW_S, BW_S, SWAP_S, STORAGE_S = 0.008, 0.016, 0.020, 0.012


def _bench_cnn():
    b = GraphBuilder("async_bench_cnn")
    b.input((3, 16, 16))
    for width in (8, 8, 16, 16):
        b.conv(width, 3)
        b.relu()
    b.pool(2, 2)
    b.conv(16, 3)
    b.relu()
    b.global_avg_pool()
    b.flatten()
    b.linear(5)
    b.softmax()
    b.loss()
    return b.finish()


def _swap_bound_case():
    """A 3-tier plan where every interior block swaps (block 0 via NVMe)
    plus the synthetic modeled costs that make it swap-bound."""
    graph = _bench_cnn()
    blocks = uniform_blocks(graph, 6)
    n = len(blocks)
    placements = {0: 2}
    plan = make_plan(graph.name, 4, blocks, [S] * (n - 1) + [R],
                     placements=placements)
    costs = BlockCosts(
        fw=(FW_S,) * n, bw=(BW_S,) * n,
        stash_bytes=(0,) * n, boundary_bytes=(0,) * n,
        weight_bytes=(0,) * n, swap_time=(SWAP_S,) * n,
        grad_swap_time=(0.0,) * n,
        storage_out_time=tuple(STORAGE_S if b in placements else 0.0
                               for b in range(n)),
        storage_in_time=tuple(STORAGE_S if b in placements else 0.0
                              for b in range(n)))
    rng = np.random.default_rng(0)
    x = rng.standard_normal((4, 3, 16, 16))
    y = rng.integers(0, 5, 4)
    return graph, plan, costs, x, y


def _timed_run(cls, graph, plan, pacer, x, y):
    """Best-of-REPEATS wall-clock plus the *fastest* run's grads and
    executor — the fidelity assert must judge the same run the timing
    convention keeps, or one descheduled final repeat flakes the gate."""
    best = float("inf")
    grads = None
    executor = None
    for _ in range(REPEATS):
        model = ExecutableModel(graph, dtype=np.float64, seed=7)
        space = TieredMemorySpace([2 * GiB, 2 * GiB, 8 * GiB])
        candidate = cls(model, plan, space, pacer=pacer)
        model.zero_grad()
        t0 = time.perf_counter()
        candidate.run_iteration(x, y, step=0)
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
            executor = candidate
            grads = {(l, p): a.copy() for l, p, a in model.gradients()}
    return best, grads, executor


def test_async_overlap_speedup(bench_writer):
    """The gate: async >= 1.3x sync on the swap-bound 3-tier config,
    with byte-identical gradients."""
    graph, plan, costs, x, y = _swap_bound_case()
    pacer = TransferPacer(time_scale=1.0, costs=costs)

    sync_wall, sync_grads, _ = _timed_run(OutOfCoreExecutor, graph, plan,
                                          pacer, x, y)
    async_wall, async_grads, executor = _timed_run(
        AsyncOutOfCoreExecutor, graph, plan, pacer, x, y)

    assert async_grads.keys() == sync_grads.keys()
    for key, a in async_grads.items():
        assert np.array_equal(a, sync_grads[key]), key

    speedup = sync_wall / async_wall
    trace = executor.trace
    measured = trace.stall_profile()
    print(f"\nswap-bound 3-tier config ({plan.num_blocks} blocks, "
          f"block 0 via NVMe):")
    print(f"  sync  {sync_wall * 1e3:8.1f} ms")
    print(f"  async {async_wall * 1e3:8.1f} ms   "
          f"occupancy {measured.occupancy() * 100:5.1f}%")
    print(f"  overlap speedup {speedup:.2f}x (floor 1.3x)")
    assert speedup >= 1.3, (
        f"async {async_wall * 1e3:.1f} ms vs sync {sync_wall * 1e3:.1f} ms "
        f"= {speedup:.2f}x, below the 1.3x overlap floor")

    bench_writer.emit("async_runtime", {
        "sync_wall_ms": round(sync_wall * 1e3, 2),
        "async_wall_ms": round(async_wall * 1e3, 2),
        "overlap_speedup": round(speedup, 3),
        "async_occupancy": round(measured.occupancy(), 4),
        "async_stall_fractions": {k: round(v, 4)
                                  for k, v in measured.fractions().items()},
    })


def test_async_matches_simulated_profile(bench_writer):
    """Sim-vs-real fidelity on the bench config: per-resource stall
    fractions within a few points of makespan."""
    graph, plan, costs, x, y = _swap_bound_case()
    ops = compile_plan(plan, costs)
    sim = simulate(ops)
    predicted = stall_profile(ops, sim)

    pacer = TransferPacer(time_scale=1.0, costs=costs)
    _, _, executor = _timed_run(AsyncOutOfCoreExecutor, graph, plan,
                                pacer, x, y)
    measured = executor.trace.stall_profile()

    # 'other' is unbounded runtime overhead (scheduling noise on loaded
    # runners) — excluded from the fidelity gate on both sides
    resources = (set(predicted.stalls) | set(measured.stalls)) - {"other"}
    worst = max((abs(predicted.fraction(r) - measured.fraction(r))
                 for r in resources), default=0.0)
    occ_err = abs(predicted.occupancy() - measured.occupancy())
    print(f"\npredicted occupancy {predicted.occupancy() * 100:5.1f}% vs "
          f"measured {measured.occupancy() * 100:5.1f}%")
    print(f"worst per-resource stall-fraction error {worst:.4f}")
    assert worst < 0.10, (predicted.fractions(), measured.fractions())
    assert occ_err < 0.10

    bench_writer.emit("async_runtime", {
        "predicted_occupancy": round(predicted.occupancy(), 4),
        "measured_occupancy": round(measured.occupancy(), 4),
        "stall_fraction_worst_error": round(worst, 4),
        "predicted_makespan_s": round(sim.makespan, 5),
    })
