"""Fig. 7: the best blocking KARMA finds for ResNet-50/ImageNet at batch
512 on a 16 GiB V100 — block boundaries, per-block swap/compute balance,
and the resulting plan string.
"""

import pytest

from repro.core import plan
from repro.models import resnet50
from repro.sim import simulate_plan


@pytest.fixture(scope="module")
def resnet50_plan():
    graph = resnet50()
    return plan(graph, batch_size=512)


def test_fig7_resnet50_blocking(benchmark, resnet50_plan, bench_writer):
    kp = resnet50_plan
    res = simulate_plan(kp.plan, kp.cost, kp.capacity)
    benchmark(simulate_plan, kp.plan, kp.cost, kp.capacity)
    bench_writer.emit("fig7_blocking", {
        "blocks": kp.plan.num_blocks,
        "makespan_s": res.makespan,
        "gpu_occupancy": res.gpu_occupancy,
    })
    print()
    print("Fig. 7 — best blocking for ResNet-50 @ batch 512 (V100 16 GiB):")
    for b, (s, e) in enumerate(kp.plan.blocks):
        policy = kp.plan.policies[b].value
        stash = kp.cost.block_activation_bytes(s, e) / 2**20
        t_fw = kp.cost.block_fw_time(s, e) * 1e3
        layers = f"{kp.cost.graph[s].name} .. {kp.cost.graph[e - 1].name}"
        print(f"  block {b + 1:3d} [{s:4d},{e:4d}) {policy:12s} "
              f"stash {stash:9.1f} MiB  fw {t_fw:7.2f} ms  {layers}")
    print(f"  iteration: {res.summary()}")
    print(f"  plan: {kp.plan.plan_string()[:400]} ...")
    assert kp.plan.num_blocks >= 2
    assert res.gpu_occupancy > 0.5, \
        "the chosen blocking must keep the device mostly busy"
