"""Observability overhead: instrumentation must not tax the planner.

The event simulator is the objective function of the blocking search —
tens of thousands of ``simulate()`` calls per plan — so the span/metrics
instrumentation threaded through it (PR 6) is only acceptable if the
*disabled* path costs nothing measurable.  This bench prices both sides
on the 64-block, 3-tier ResNet-200 sweep from ``bench_engine``:

* **disabled overhead** — the public ``simulate()`` entry (tracer off:
  one ``TRACER.enabled`` branch + the engines' dormant stats hooks)
  against direct calls into the internal engine loops.  Hard bar: < 3%.
* **enabled overhead** — the same sweep with the tracer on (span around
  each call, stats dict per event loop, metrics publication).  Bounded
  at < 100% — tracing may cost, but never an order of magnitude.

Cross-commit drift of the underlying engine throughput is separately
gated by ``BENCH_engine``'s ``sim_ops_per_sec`` baseline, so this bench
pins the *delta* from instrumentation, not absolute speed.

Also writes ``sample_trace.json`` (planner-span + predicted-timeline
tracks for one sweep case, schema-validated) next to the bench
artifacts; the CI bench job uploads it so every run leaves a trace a
reviewer can drop into ui.perfetto.dev.

Emits ``BENCH_obs_overhead.json``.  The committed baseline pins both
fractions at their assert bounds (the in-bench asserts are the hard
gate; the 15% regression tolerance on top would false-positive on
jitter around small fractions otherwise).
"""

import json
import time

from bench_engine import STEADY_STATE_ITERATIONS, _sixty_four_block_plans, \
    _unroll
from repro.obs.export import (
    chrome_trace,
    sim_track_events,
    span_track_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import TRACER
from repro.sim.engine import (
    _Prepared,
    _simulate_heap,
    _simulate_ledgered,
    simulate,
)

DISABLED_OVERHEAD_BAR = 0.03
ENABLED_OVERHEAD_BAR = 1.0


def _sweep_cases():
    return [(_unroll(ops, STEADY_STATE_ITERATIONS), ledger)
            for ops, ledger in _sixty_four_block_plans()]


def _time_best(fn, cases, reps):
    """Min-of-N wall-clock of one full sweep (robust to transient load)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn(cases)
        best = min(best, time.perf_counter() - t0)
    return best


def _time_paired(fn_a, fn_b, cases, reps):
    """Interleaved sweep timing: (sum of per-case minima for A, for B).

    Timing all reps of A and then all reps of B lets monotonic CPU
    frequency drift (thermal / cgroup throttling) masquerade as overhead
    on whichever ran second, so A and B alternate *per case per rep* —
    both sides see the same clock within microseconds.  Each (case, fn)
    cell keeps its minimum across reps and the sweep total is the sum of
    minima: scheduler preemption spikes are excluded per case instead of
    invalidating a whole-sweep rep.
    """
    best_a = [float("inf")] * len(cases)
    best_b = [float("inf")] * len(cases)
    for _ in range(reps):
        for i, case in enumerate(cases):
            one = [case]
            t0 = time.perf_counter()
            fn_a(one)
            best_a[i] = min(best_a[i], time.perf_counter() - t0)
            t0 = time.perf_counter()
            fn_b(one)
            best_b[i] = min(best_b[i], time.perf_counter() - t0)
    return sum(best_a), sum(best_b)


def _run_public(cases):
    for ops, ledger in cases:
        simulate(ops, memory_capacity=ledger)


def _run_direct(cases):
    """The engine loops without the instrumented public dispatch."""
    for ops, ledger in cases:
        prep = _Prepared(ops)
        if ledger is None or not any(prep.acquires):
            _simulate_heap(prep)
        else:
            _simulate_ledgered(prep, ledger)


def test_disabled_overhead_under_3_percent(bench_writer):
    """Acceptance: tracer-off ``simulate()`` within 3% of the raw loops."""
    assert not TRACER.enabled
    cases = _sweep_cases()
    reps = 9
    _time_best(_run_public, cases, 1)  # warm up
    direct_s, public_s = _time_paired(_run_direct, _run_public, cases, reps)
    disabled_frac = max(0.0, public_s / direct_s - 1.0)
    print(f"\ndisabled instrumentation: raw loops {direct_s * 1e3:.1f} ms, "
          f"public simulate {public_s * 1e3:.1f} ms "
          f"({disabled_frac * 100:+.2f}%)")
    bench_writer.emit("obs_overhead", {
        "sweep.plans": len(cases),
        "sweep.direct_s": direct_s,
        "sweep.disabled_s": public_s,
        "disabled_overhead_frac": disabled_frac,
    })
    assert disabled_frac < DISABLED_OVERHEAD_BAR, \
        f"disabled tracing costs {disabled_frac * 100:.1f}% (bar 3%)"


def test_enabled_overhead_bounded(bench_writer):
    """Tracing on: spans + stats + metrics stay under 2x the off path."""
    cases = _sweep_cases()
    reps = 5

    def run_traced(cs):
        TRACER.enable()
        try:
            _run_public(cs)
        finally:
            TRACER.disable()
            TRACER.clear()

    run_traced(cases)  # warm up (span buffers, metric instruments)
    disabled_s, enabled_s = _time_paired(_run_public, run_traced, cases,
                                         reps)
    enabled_frac = max(0.0, enabled_s / disabled_s - 1.0)
    print(f"\nenabled instrumentation: off {disabled_s * 1e3:.1f} ms, "
          f"on {enabled_s * 1e3:.1f} ms ({enabled_frac * 100:+.1f}%)")
    bench_writer.emit("obs_overhead", {
        "sweep.enabled_s": enabled_s,
        "enabled_overhead_frac": enabled_frac,
    })
    assert enabled_frac < ENABLED_OVERHEAD_BAR, \
        f"enabled tracing costs {enabled_frac * 100:.0f}% (bar 100%)"


def test_sample_trace_artifact(bench_writer):
    """Export one sweep case as a schema-valid Perfetto trace artifact."""
    ops, ledger = _sweep_cases()[0]
    TRACER.clear()
    TRACER.enable()
    try:
        sim = simulate(ops, memory_capacity=ledger)
        spans = TRACER.drain()
    finally:
        TRACER.disable()
    events = span_track_events(spans, pid=1)
    events += sim_track_events(sim, pid=2)
    doc = chrome_trace(events)
    problems = validate_chrome_trace(doc)
    assert problems == [], problems
    path = write_chrome_trace(bench_writer.out_dir / "sample_trace.json",
                              doc)
    loaded = json.loads(path.read_text())
    n_complete = sum(1 for e in loaded["traceEvents"] if e["ph"] == "X")
    print(f"\nsample trace: {len(loaded['traceEvents'])} events "
          f"({n_complete} spans) -> {path}")
    assert n_complete >= len(ops)  # the whole sim timeline is in there
    bench_writer.emit("obs_overhead", {
        "sample_trace.events": len(loaded["traceEvents"]),
        "sample_trace.spans": n_complete,
    })
