"""Ablations over KARMA's design choices (DESIGN.md's ablation index):

* blocking solver: uniform blocks vs the DP+portfolio search;
* recompute interleave: on vs off (Opt-2's contribution);
* prefetch discipline: none vs one-ahead vs eager (the Fig. 2 ladder);
* swap-path bandwidth: PCIe 16 GB/s vs NVLink 50 vs calibrated 100 GB/s
  (the substitution study).
"""

import pytest

from repro.core import make_plan, plan, solve_blocking
from repro.costs import profile_graph
from repro.eval import default_platform, render_table
from repro.hardware import (
    TransferModel,
    abci_host,
    karma_swap_link,
    nvlink2,
    pcie_gen3_x16,
    v100_sxm2_16gb,
)
from repro.models import resnet200
from repro.sim import simulate_plan


@pytest.fixture(scope="module")
def r200():
    return resnet200()


def test_ablation_blocking_solver(benchmark, r200, bench_writer):
    device, _, transfer = default_platform()
    cost = profile_graph(r200, device, transfer, 16)
    cap = device.usable_memory
    uni = solve_blocking(r200, cost, cap, r200.name, 16, method="uniform")
    auto = solve_blocking(r200, cost, cap, r200.name, 16, method="auto")
    bench_writer.emit("ablation_design", {
        "blocking.uniform_makespan_s": uni.objective,
        "blocking.auto_makespan_s": auto.objective,
        "blocking.auto_blocks": len(auto.blocks),
    })
    print()
    print(render_table([
        {"solver": "uniform blocks", "makespan (ms)":
            f"{uni.objective * 1e3:.1f}", "blocks": len(uni.blocks)},
        {"solver": "DP + portfolio + local search", "makespan (ms)":
            f"{auto.objective * 1e3:.1f}", "blocks": len(auto.blocks)},
    ], title="Ablation — Opt-1 blocking solver (ResNet-200 @ 16)"))
    benchmark(solve_blocking, r200, cost, cap, r200.name, 16, "uniform")
    assert auto.objective <= uni.objective * 1.001


def test_ablation_recompute_interleave(benchmark, r200, bench_writer):
    rows = []
    gains = {}
    for bs in (12, 20):
        with_r = plan(r200, batch_size=bs, recompute=True)
        without = plan(r200, batch_size=bs, recompute=False)
        t1 = simulate_plan(with_r.plan, with_r.cost, with_r.capacity)
        t0 = simulate_plan(without.plan, without.cost, without.capacity)
        gains[bs] = 1 - t1.makespan / t0.makespan
        rows.append({"batch": bs,
                     "KARMA (ms)": f"{t0.makespan * 1e3:.1f}",
                     "KARMA+recompute (ms)": f"{t1.makespan * 1e3:.1f}",
                     "gain": f"{gains[bs] * 100:.1f}%"})
        assert t1.makespan <= t0.makespan + 1e-12
    print()
    print(render_table(rows, title="Ablation — Opt-2 recompute interleave"))
    bench_writer.emit("ablation_design", {
        f"recompute.batch{bs}.gain": g for bs, g in gains.items()})
    benchmark(lambda: simulate_plan(with_r.plan, with_r.cost,
                                    with_r.capacity))


def test_ablation_prefetch_discipline(benchmark, r200, bench_writer):
    """The Fig. 2 ladder: eager beats one-ahead beats no prefetch."""
    device, _, transfer = default_platform()
    cost = profile_graph(r200, device, transfer, 16)
    cap = device.usable_memory
    kp = plan(r200, batch_size=16, recompute=False)
    rows = []
    times = {}
    for mode in ("none", "one_ahead", "eager"):
        p = make_plan(r200.name, 16, kp.plan.blocks, kp.plan.policies,
                      prefetch=mode)
        res = simulate_plan(p, cost, cap)
        times[mode] = res.makespan
        rows.append({"prefetch": mode,
                     "makespan (ms)": f"{res.makespan * 1e3:.1f}",
                     "occupancy": f"{res.gpu_occupancy * 100:.1f}%"})
    print()
    print(render_table(rows, title="Ablation — swap-in prefetch discipline"))
    bench_writer.emit("ablation_design", {
        f"prefetch.{m}.makespan_s": t for m, t in times.items()})
    benchmark(lambda: simulate_plan(p, cost, cap))
    assert times["eager"] <= times["one_ahead"] + 1e-12
    assert times["one_ahead"] <= times["none"] + 1e-12


def test_ablation_swap_link_bandwidth(benchmark, r200, bench_writer):
    """The substitution study: the same KARMA plan priced under PCIe,
    NVLink, and the calibrated swap path."""
    device, host = v100_sxm2_16gb(), abci_host()
    rows = []
    for link in (pcie_gen3_x16(), nvlink2(), karma_swap_link()):
        transfer = TransferModel(link=link, device=device, host=host)
        kp = plan(r200, batch_size=16, device=device, transfer=transfer)
        res = simulate_plan(kp.plan, kp.cost, kp.capacity)
        rows.append({"link": link.name,
                     "BW (GB/s)": f"{link.bandwidth / 1e9:.0f}",
                     "samples/s": f"{res.samples_per_sec:.1f}",
                     "occupancy": f"{res.gpu_occupancy * 100:.1f}%"})
    print()
    print(render_table(rows, title="Ablation — swap-path bandwidth "
                                   "(ResNet-200 @ 16)"))
    bench_writer.emit("ablation_design", {
        f"link.{r['link']}.samples_per_s": float(r["samples/s"])
        for r in rows})
    benchmark(lambda: simulate_plan(kp.plan, kp.cost, kp.capacity))
    assert float(rows[0]["samples/s"]) <= float(rows[-1]["samples/s"])
