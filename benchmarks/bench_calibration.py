"""Trace-calibration benchmarks: fit fidelity and closed-loop accuracy.

Two questions about ``repro.costs.trace_fit``:

1. **Fit fidelity** — given a trace synthesized from *known* per-block
   compute scales and link parameters over a real ResNet-50 cost
   profile, how closely does the least-squares fit recover them?  Fully
   deterministic (seeded rng, no wall clock), so the recovered errors
   are gateable key metrics.
2. **Closed-loop accuracy** — on the live validation harness (paced
   execution of the cnn and gpt configs), does re-planning with the
   fitted scales reduce the sim-vs-real stall error?  Wall-clock
   measurements are load-sensitive, so the per-config errors are
   reported for the trajectory but the gate is the epsilon-tolerant
   not-worse assert, mirroring the test suite.

Emits ``BENCH_calibration.json``; ``fit.max_rel_error`` and
``fit.link_bw_rel_error`` are gated in
``benchmarks/baselines/key_metrics.json`` (direction: lower).
"""

import numpy as np

from repro.core import BlockPolicy, make_plan
from repro.costs import fit_link, fit_op_scales, profile_graph
from repro.eval.validation import DEFAULT_CONFIGS, validate_config
from repro.costs.trace_fit import fit_validation_report
from repro.hardware import TransferModel, abci_host, karma_swap_link
from repro.hardware.spec import v100_sxm2_16gb
from repro.models import build
from repro.runtime.streams import OpRecord
from repro.sim import block_costs

NUM_BLOCKS = 8
TIME_SCALE = 0.02
NOISE = 0.01
TRUE_LATENCY_S = 5e-6
TRUE_BANDWIDTH = 12e9


def _resnet50_blocks():
    graph = build("resnet50")
    device = v100_sxm2_16gb()
    transfer = TransferModel(link=karma_swap_link(), device=device,
                             host=abci_host())
    cost = profile_graph(graph, device, transfer, 16)
    n = len(graph)
    bounds = [round((i + 1) * n / NUM_BLOCKS) for i in range(NUM_BLOCKS)]
    blocks = tuple(zip([0] + bounds[:-1], bounds))
    policies = [BlockPolicy.SWAPPED] * (NUM_BLOCKS - 1) + \
        [BlockPolicy.RESIDENT]
    plan = make_plan(graph.name, 16, list(blocks), policies)
    costs = block_costs(plan.blocks, cost)
    names = [cost.layer(i).name for i in range(len(graph))]
    return blocks, costs, names


def test_synthetic_fit_fidelity(bench_writer):
    """Recovered scales / link parameters vs the known ground truth the
    trace was synthesized from; deterministic, gated."""
    blocks, costs, names = _resnet50_blocks()
    rng = np.random.default_rng(0)
    true_scales = rng.uniform(0.5, 2.0, NUM_BLOCKS)

    records = []
    for b in range(NUM_BLOCKS):
        for kind, ref in (("F", costs.fw[b]), ("R", costs.fw[b]),
                          ("B", costs.bw[b])):
            for _ in range(3):
                eps = rng.uniform(-NOISE, NOISE)
                dur = true_scales[b] * ref * (1.0 + eps) * TIME_SCALE
                records.append(OpRecord(
                    label=f"{kind}{b + 1}", resource="gpu", block=b,
                    start=0.0, finish=dur, ready=0.0))
    for nbytes in (1 << 22, 1 << 24, 1 << 26, 1 << 28):
        dur = (TRUE_LATENCY_S + nbytes / TRUE_BANDWIDTH) * TIME_SCALE
        records.append(OpRecord(label="S", resource="h2d", block=0,
                               start=0.0, finish=dur, ready=0.0,
                               nbytes=nbytes))

    scales = fit_op_scales(records, costs, blocks, names,
                           time_scale=TIME_SCALE)
    per_block = np.asarray([scales[names[s]] for s, _ in blocks])
    rel = np.abs(per_block - true_scales) / true_scales
    link = fit_link("h2d", records, time_scale=TIME_SCALE)
    bw_rel = abs(link.bandwidth_bytes_per_s - TRUE_BANDWIDTH) \
        / TRUE_BANDWIDTH

    print(f"\nsynthetic fit over {NUM_BLOCKS} blocks, {NOISE:.0%} noise: "
          f"max scale error {rel.max():.4f}, mean {rel.mean():.4f}; "
          f"link bw error {bw_rel:.2e} "
          f"(fit {link.bandwidth_bytes_per_s / 1e9:.2f} GB/s, "
          f"latency {link.latency_s * 1e6:.1f} us)")
    bench_writer.emit("calibration", {
        "fit.blocks": NUM_BLOCKS,
        "fit.noise": NOISE,
        "fit.max_rel_error": float(rel.max()),
        "fit.mean_rel_error": float(rel.mean()),
        "fit.link_bw_rel_error": float(bw_rel),
        "fit.link_latency_rel_error":
            float(abs(link.latency_s - TRUE_LATENCY_S) / TRUE_LATENCY_S),
    })
    # through-origin LS over 3 reps: error bounded by the injected noise
    assert rel.max() <= NOISE
    assert bw_rel <= 1e-6  # link samples are noise-free


def test_calibrated_validation_error(bench_writer):
    """Fit from one paced validation run per config, re-validate with the
    calibrated cost model; error must not get worse (epsilon-tolerant —
    paced wall clocks carry scheduler noise)."""
    eps = 0.02
    rows = {}
    worse = 0.0
    for name in DEFAULT_CONFIGS:
        before = validate_config(name, target_wall_s=0.4)
        art = fit_validation_report(before)
        after = validate_config(name, target_wall_s=0.4,
                                calibration=art.op_scales)
        rows[name] = (before.max_abs_error, after.max_abs_error)
        worse = max(worse, after.max_abs_error - before.max_abs_error)

    print("\ncalibrated validation (max abs stall error, fraction of "
          "makespan):")
    for name, (b, a) in rows.items():
        print(f"  {name:4} uncalibrated {b:.4f} -> calibrated {a:.4f}")
    bench_writer.emit("calibration", {
        **{f"{name}.uncalibrated_error": b for name, (b, _) in
           rows.items()},
        **{f"{name}.calibrated_error": a for name, (_, a) in
           rows.items()},
        "calibrated_not_worse": worse <= eps,
    })
    assert worse <= eps, \
        f"calibration worsened validation error by {worse:.4f}"
