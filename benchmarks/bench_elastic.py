"""Elastic-training benchmarks: churn overhead, recovery, warm replans.

KARMA's fault-tolerance story (§II-B) is that preemption-driven world
changes should be survivable at near-zero cost: replicas are
bit-identical after every iteration, so a clean shrink loses no state,
and a warm plan cache makes replanning for the new world ~free.  This
module prices three parts of that claim:

1. **modeled churn overhead** — a deterministic timeline twin
   (:func:`repro.elastic.simulate_churn`) replays a fixed synthetic
   trace through the replan/degrade/restart policy and reports the
   throughput ratio vs a churn-free run plus modeled recovery times.
   These numbers have no clock or RNG in them, so they gate bit-stably;
2. **real end-to-end recovery** — the numeric
   :class:`~repro.elastic.ChurnScenario` actually trains through the
   same kind of churn with checkpoint restarts and asserts zero lost
   steps on clean traces (wall-clock figures are informational — CI
   runners jitter);
3. **warm replan latency** — the per-world-size plan through a warm
   :class:`~repro.cache.PlanCache` vs the cold first plan; the speedup
   is why ``replan`` beats ``degrade`` in the decision table whenever
   the cache is warm.

Key metrics (``key_metrics.json``): ``throughput_under_churn_ratio``
(higher), ``modeled_mean_recover_s`` (lower), ``modeled_lost_steps``
(lower) — all from the deterministic twin.  Wall-clock metrics are
deliberately not gated.
"""

import time

from repro.cache import PlanCache
from repro.core.planner import plan as karma_plan
from repro.elastic import (
    ChurnScenario,
    FaultTrace,
    ScenarioConfig,
    simulate_churn,
    synthetic_trace,
)
from repro.elastic.scenario import divisor_worlds

#: The fixed churn workload both the twin and the real scenario replay.
STEPS, WORLD, GLOBAL_BATCH, SEED = 40, 4, 12, 7


def _trace():
    return synthetic_trace(SEED, steps=STEPS, world=WORLD, preemptions=3,
                           joins=2, slowdowns=1,
                           allowed_worlds=divisor_worlds(GLOBAL_BATCH))


def test_modeled_churn_overhead(bench_writer):
    """Deterministic timeline: throughput under churn vs churn-free."""
    trace = _trace()
    tl = simulate_churn(trace, steps=STEPS, world=WORLD,
                        global_batch=GLOBAL_BATCH)
    again = simulate_churn(trace, steps=STEPS, world=WORLD,
                           global_batch=GLOBAL_BATCH)
    assert tl.to_dict() == again.to_dict()   # gate input is bit-stable

    print(f"\nmodeled churn: {len(trace.events)} events over {STEPS} "
          f"steps, world trajectory {tl.world_trajectory}")
    print(f"  churn-free {tl.no_churn_s:.2f} s -> under churn "
          f"{tl.total_s:.2f} s (throughput ratio "
          f"{tl.throughput_ratio:.3f})")
    print(f"  recovery: mean {tl.mean_time_to_recover_s:.3f} s, max "
          f"{tl.max_time_to_recover_s:.3f} s, lost steps "
          f"{tl.total_lost_steps}")
    bench_writer.emit("elastic", {
        "throughput_under_churn_ratio": tl.throughput_ratio,
        "modeled_mean_recover_s": tl.mean_time_to_recover_s,
        "modeled_lost_steps": float(tl.total_lost_steps),
        "modeled_max_recover_s": tl.max_time_to_recover_s,  # informational
    })


def test_real_churn_recovery(bench_writer, tmp_path):
    """Numeric churn scenario: train through preemptions end to end."""
    cfg = ScenarioConfig(steps=12, world=WORLD, global_batch=GLOBAL_BATCH,
                         seed=SEED, preemptions=2, joins=1,
                         checkpoint_interval=3)
    t0 = time.perf_counter()
    result = ChurnScenario(cfg, str(tmp_path / "ckpt")).run()
    wall = time.perf_counter() - t0

    assert result.lost_steps == 0        # clean churn loses nothing
    assert len(result.losses) == cfg.steps
    recoveries = len(result.reports)
    mean_rec = (sum(r.time_to_recover_s for r in result.reports)
                / recoveries if recoveries else 0.0)
    print(f"\nreal churn: {recoveries} recoveries across worlds "
          f"{[w for _, w in result.world_trajectory]} in {wall:.2f} s")
    print(f"  mean wall recovery {mean_rec * 1e3:.1f} ms, checkpoints "
          f"{result.checkpoints_written}, lost steps {result.lost_steps}")
    bench_writer.emit("elastic", {
        "real_recoveries": float(recoveries),            # informational
        "real_wall_s": wall,                             # informational
        "real_mean_recover_ms": mean_rec * 1e3,          # informational
        "real_lost_steps": float(result.lost_steps),     # informational
    })


def test_warm_replan_latency(benchmark, bench_writer):
    """Replanning for a seen world size through a warm PlanCache."""
    graph = ChurnScenario(
        ScenarioConfig(steps=2, world=1, global_batch=GLOBAL_BATCH),
        checkpoint_dir="/tmp/unused-bench-elastic",
        trace=FaultTrace(events=())).graph
    cache = PlanCache(persist=False)
    t0 = time.perf_counter()
    cold = karma_plan(graph, GLOBAL_BATCH // WORLD, method="dp",
                      cache=cache)
    cold_s = time.perf_counter() - t0
    assert not cold.cache_hit

    warm = benchmark(lambda: karma_plan(graph, GLOBAL_BATCH // WORLD,
                                        method="dp", cache=cache))
    assert warm.cache_hit
    warm_s = benchmark.stats.stats.mean
    speedup = cold_s / warm_s if warm_s else float("inf")
    print(f"\nwarm replan: cold {cold_s * 1e3:.1f} ms -> warm "
          f"{warm_s * 1e6:.0f} us ({speedup:.0f}x)")
    bench_writer.emit("elastic", {
        "warm_replan_ms": warm_s * 1e3,                  # informational
        "cold_replan_ms": cold_s * 1e3,                  # informational
        "warm_replan_speedup": speedup,                  # informational
    })
