"""Simulation-engine benchmarks: event-heap engine vs the seed engine,
and batched candidate evaluation through the lowering cache.

The discrete-event simulator is the objective function of the blocking /
portfolio search, so planner throughput is bounded by ``simulate()``.
This bench prices the two remedies this repo ships:

1. **event-heap engine** — ``repro.sim.engine`` (indegree wakeups +
   incremental ledger) against the seed round-robin engine preserved in
   ``repro.sim.reference_engine``, on a steady-state 3-iteration stream
   of a 64-block, 3-tier (HBM/DRAM/NVMe) ResNet-200 plan sweep.  Every
   simulated grid point is asserted **bit-identical** between the two
   engines; the speedup bar is >= 10x (the seed ledger is
   O(events^2) per simulation, so the gap widens with stream length).
2. **batched evaluation** — the same candidate grid priced through the
   shared :class:`~repro.sim.trainer_sim.LoweringCache` (result reuse +
   skeleton re-binding) vs. rebuilding every plan from scratch.

Emits ``BENCH_engine.json`` with the gated key metrics (see
``benchmarks/baselines/key_metrics.json``): the engine speedup, the
serial simulation throughput in ops/sec, and the batched-eval speedup.
Baselines are committed with generous headroom — the in-bench asserts
are the hard floor; the gate exists to catch order-of-magnitude
regressions (e.g. reintroducing a quadratic ledger) on top of them.
"""

import time

from repro.core import BlockPolicy, make_plan
from repro.core.blocking import CandidateEvaluator, build_inputs
from repro.core.solver import portfolio_search
from repro.costs import profile_graph
from repro.hardware import TransferModel, abci_host, karma_swap_link
from repro.hardware.spec import v100_sxm2_16gb
from repro.hardware.tiering import abci_hierarchy
from repro.models import build
import numpy as np

from repro.sim import (
    OpTable,
    SimOp,
    block_costs,
    compile_plan,
    simulate,
    simulate_portfolio,
    simulate_reference,
)
from repro.sim.trainer_sim import _stash_ledger_capacity

S, R = BlockPolicy.SWAPPED, BlockPolicy.RESIDENT

NUM_BLOCKS = 64
BATCH = 96
STEADY_STATE_ITERATIONS = 3
#: (resident suffix, NVMe stride) grid — the margin/placement shape of the
#: blocking search's sweep, pinned to feasible points (larger resident
#: suffixes deadlock on the stash ledger at this batch) so the bench is
#: deterministic
SWEEP = ((4, 2), (4, 3), (4, 4), (8, 2), (8, 3), (8, 4))


def _sixty_four_block_plans():
    """The 64-block, 3-tier ResNet-200 sweep: compiled op streams +
    ledger capacities for each grid point."""
    graph = build("resnet200")
    device = v100_sxm2_16gb()
    transfer = TransferModel(link=karma_swap_link(), device=device,
                             host=abci_host())
    cost = profile_graph(graph, device, transfer, BATCH)
    hier = abci_hierarchy()
    n = len(graph)
    bounds = [round((i + 1) * n / NUM_BLOCKS) for i in range(NUM_BLOCKS)]
    blocks = list(zip([0] + bounds[:-1], bounds))
    cases = []
    for resident_suffix, nvme_stride in SWEEP:
        swapped = NUM_BLOCKS - resident_suffix
        policies = [S] * swapped + [R] * resident_suffix
        placements = {b: (2 if b % nvme_stride == 0 else 1)
                      for b in range(swapped)}
        plan = make_plan(graph.name, BATCH, blocks, policies,
                         placements=placements)
        costs = block_costs(plan.blocks, cost, hierarchy=hier,
                            placements=plan.placements)
        ledger = _stash_ledger_capacity(plan, costs, cost,
                                        device.usable_memory)
        cases.append((compile_plan(plan, costs), ledger))
    return cases


def _unroll(ops, iterations):
    """Steady-state stream: ``iterations`` back-to-back copies of one
    iteration's ops; iteration k+1's root ops wait for iteration k's last
    GPU op (the optimizer step boundary)."""
    out = []
    nops = len(ops)
    last_gpu = max(i for i, op in enumerate(ops) if op.resource == "gpu")
    for k in range(iterations):
        off = k * nops
        for op in ops:
            deps = tuple(d + off for d in op.deps)
            if k and not op.deps:
                deps = (last_gpu + off - nops,)
            out.append(SimOp(op.op_id + off, op.resource, op.duration,
                             deps, op.mem_acquire, op.mem_release,
                             op.label))
    return out


def test_engine_speedup_64block_3tier(bench_writer):
    """Acceptance: the event-heap engine is >= 10x faster than the seed
    engine on the 64-block, 3-tier steady-state sweep, bit-identically."""
    cases = [( _unroll(ops, STEADY_STATE_ITERATIONS), ledger)
             for ops, ledger in _sixty_four_block_plans()]
    total_ops = sum(len(ops) for ops, _ in cases)

    # bit-identical on every grid point (timings, summaries, gap lists)
    for ops, ledger in cases:
        new = simulate(ops, memory_capacity=ledger)
        ref = simulate_reference(ops, memory_capacity=ledger)
        assert new.timings == ref.timings
        assert new.makespan == ref.makespan
        assert new.resource_busy == ref.resource_busy
        assert new.resource_span == ref.resource_span
        assert new.idle_gaps("gpu") == ref.idle_gaps("gpu")

    def sweep(engine, reps):
        # min-of-N: robust to transient load from earlier bench modules
        # sharing the pytest process / CI runner
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            for ops, ledger in cases:
                engine(ops, memory_capacity=ledger)
            best = min(best, time.perf_counter() - t0)
        return best

    sweep(simulate, 1)  # warm up
    new_s = sweep(simulate, 5)
    ref_s = sweep(simulate_reference, 3)
    speedup = ref_s / new_s
    ops_per_sec = total_ops / new_s
    print(f"\n64-block 3-tier sweep ({len(cases)} plans x "
          f"{STEADY_STATE_ITERATIONS} iterations, {total_ops} ops): "
          f"event-heap {new_s * 1e3:.1f} ms, reference "
          f"{ref_s * 1e3:.1f} ms ({speedup:.1f}x, "
          f"{ops_per_sec:,.0f} ops/s)")
    bench_writer.emit("engine", {
        "sweep.plans": len(cases),
        "sweep.total_ops": total_ops,
        "sweep.event_heap_s": new_s,
        "sweep.reference_s": ref_s,
        "engine_speedup_64b_3tier": speedup,
        "sim_ops_per_sec": ops_per_sec,
        "bit_identical": True,
    })
    assert speedup >= 10.0, \
        f"event-heap engine only {speedup:.1f}x faster than the seed engine"


def test_single_iteration_speedup(bench_writer):
    """One-iteration pricing (the search's unit of work): reported for
    the perf trajectory, no >= 10x bar (the quadratic gap needs stream
    length to open up)."""
    cases = _sixty_four_block_plans()

    def sweep(engine, reps):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            for ops, ledger in cases:
                engine(ops, memory_capacity=ledger)
            best = min(best, time.perf_counter() - t0)
        return best

    sweep(simulate, 1)
    new_s = sweep(simulate, 10)
    ref_s = sweep(simulate_reference, 3)
    print(f"\nsingle-iteration sweep: event-heap {new_s * 1e3:.2f} ms, "
          f"reference {ref_s * 1e3:.2f} ms ({ref_s / new_s:.1f}x)")
    bench_writer.emit("engine", {
        "single_iter.event_heap_s": new_s,
        "single_iter.reference_s": ref_s,
        "single_iter.speedup": ref_s / new_s,
    })
    assert ref_s / new_s >= 3.0


def test_vectorized_portfolio_sweep(bench_writer):
    """Acceptance: pricing a portfolio of duration variants through the
    SoA engine (``OpTable.concat`` + ``simulate_portfolio``) is >= 5x
    faster than one ``simulate()`` call per variant, with bit-identical
    per-candidate makespans.

    The portfolio is the calibration sweep the planner actually runs:
    every steady-state grid-point stream priced under 32 link-bandwidth
    hypotheses (link-op durations scaled 0.5x-2x).  The topological peel
    is duration-independent, so the merged table pays for the graph once
    and advances all variants as columns of one 2-D timing array.
    """
    link_resources = {"h2d", "d2h", "d2s", "s2d"}
    streams = [_unroll(ops, STEADY_STATE_ITERATIONS)
               for ops, _ in _sixty_four_block_plans()]
    scales = np.linspace(0.5, 2.0, 32)
    tables = [OpTable.from_ops(s) for s in streams]
    merged = OpTable.concat(tables)
    offsets = np.cumsum([0] + [t.n for t in tables])[:-1]
    is_link = np.asarray(
        [merged.resources[r].split(":", 1)[1] in link_resources
         for r in merged.resource_ids])

    # scalar baseline inputs, prebuilt so only simulate() is timed —
    # mirrors the vectorized side, whose tables are also built outside
    variants = []
    for si, stream in enumerate(streams):
        for j, sc in enumerate(scales):
            variants.append((si, j, [
                SimOp(o.op_id, o.resource,
                      o.duration * sc if o.resource in link_resources
                      else o.duration,
                      o.deps, label=o.label)
                for o in stream]))

    def vec_pass():
        d = np.where(is_link[:, None],
                     merged.durations[:, None] * scales[None, :],
                     merged.durations[:, None])
        res = simulate_portfolio(merged, d)
        return np.maximum.reduceat(res.finishes, offsets, axis=0)

    def scalar_pass():
        out = np.zeros((len(streams), len(scales)))
        for si, j, ops in variants:
            out[si, j] = simulate(ops).makespan
        return out

    got = vec_pass()  # warm up + the bit-identity certificate
    want = scalar_pass()
    assert np.array_equal(got, want), "portfolio makespans drifted"

    vec_s = scalar_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        vec_pass()
        vec_s = min(vec_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        scalar_pass()
        scalar_s = min(scalar_s, time.perf_counter() - t0)

    speedup = scalar_s / vec_s
    print(f"\nvectorized portfolio sweep ({len(variants)} variants, "
          f"{merged.n} merged ops): batched {vec_s * 1e3:.1f} ms, "
          f"per-variant {scalar_s * 1e3:.1f} ms ({speedup:.1f}x)")
    bench_writer.emit("engine", {
        "portfolio.variants": len(variants),
        "portfolio.merged_ops": merged.n,
        "portfolio.vectorized_s": vec_s,
        "portfolio.per_variant_s": scalar_s,
        "vectorized_sweep_speedup": speedup,
        "portfolio.bit_identical": True,
    })
    assert speedup >= 5.0, \
        f"vectorized portfolio sweep only {speedup:.1f}x faster"


def test_batched_eval_speedup(bench_writer):
    """The portfolio grid priced through the shared lowering cache vs
    rebuilding every candidate from scratch (both on the new engine, so
    the ratio isolates the batching)."""
    from repro.sim.trainer_sim import simulate_plan

    graph = build("resnet200")
    device = v100_sxm2_16gb()
    transfer = TransferModel(link=karma_swap_link(), device=device,
                             host=abci_host())
    cost = profile_graph(graph, device, transfer, 16)
    hier = abci_hierarchy()
    inputs = build_inputs(graph, cost, device.usable_memory)
    u = inputs.num_segments
    candidates = [list(range(1, u + 1))]
    for k in (8, 16, 32, u // 4 or 2):
        bounds = sorted({round((i + 1) * u / k) for i in range(k)})
        bounds[-1] = u
        candidates.append(bounds)
    dims = ((0.5, 1.0, 2.0), ("bandwidth", "pressure"))

    def fresh_evaluator():
        return CandidateEvaluator(
            inputs=inputs, cost=cost, capacity=device.usable_memory,
            model_name=graph.name, batch_size=16, hierarchy=hier)

    def evaluate_unbatched(bounds, margin, ppolicy,
                           _ev=fresh_evaluator()):
        # same pipeline, no memoization anywhere: realize + place via a
        # throwaway evaluator state, then an uncached simulate_plan
        blocks, policies = _ev.realize(list(bounds), margin)
        _ev._realize_cache.clear()
        placements = _ev.place(blocks, policies, ppolicy)
        _ev._place_cache.clear()
        plan = make_plan(graph.name, 16, blocks, policies,
                         placements=placements)
        return simulate_plan(plan, cost, device.usable_memory,
                             hierarchy=hier).makespan

    # min-of-3: the grid takes ~50-150 ms per pass, thin enough that GC
    # or CI-runner load in a single pass can halve the observed ratio
    unbatched_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        unbatched = portfolio_search(candidates, dims, evaluate_unbatched)
        unbatched_s = min(unbatched_s, time.perf_counter() - t0)

    batched_s = float("inf")
    for _ in range(3):
        evaluator = fresh_evaluator()  # cold caches each pass
        t0 = time.perf_counter()
        batched = portfolio_search(candidates, dims, evaluator)
        batched_s = min(batched_s, time.perf_counter() - t0)

    assert batched.best_value == unbatched.best_value
    assert batched.best_candidate == unbatched.best_candidate
    assert batched.best_dims == unbatched.best_dims
    stats = evaluator.lowering.stats()
    speedup = unbatched_s / batched_s
    print(f"\nbatched evaluation ({batched.evaluated} grid points): "
          f"unbatched {unbatched_s * 1e3:.0f} ms, batched "
          f"{batched_s * 1e3:.0f} ms ({speedup:.1f}x; "
          f"{stats['result_hits']} result hits, "
          f"{stats['skeleton_hits']} skeleton hits)")
    bench_writer.emit("engine", {
        "batched.grid_points": batched.evaluated,
        "batched.unbatched_s": unbatched_s,
        "batched.batched_s": batched_s,
        "batched_eval_speedup": speedup,
        "batched.result_hits": stats["result_hits"],
        "batched.skeleton_hits": stats["skeleton_hits"],
        "batched.identical_winner": True,
    })
    # floor chosen below the ~2.4-3x typically measured: the wall-clock
    # ratio is load-sensitive even with min-of-3 on shared CI runners
    assert speedup >= 1.5, \
        f"batched evaluation only {speedup:.1f}x faster"
