"""§IV-D accuracy parity, at tractable scale and strengthened to exactness:

1. out-of-core execution produces *bit-identical* gradients to in-core;
2. DP-KARMA training equals single-worker training to machine epsilon
   (BN-free; with BN, per-shard statistics give the usual DP near-parity);
3. a tiny GPT trained with DP-KARMA reaches the same perplexity as the
   in-core reference (the Table IV "PPL" columns' proxy).
"""

import numpy as np
import pytest

from repro.core import BlockPolicy, make_plan
from repro.data import SyntheticTokens
from repro.distributed import DataParallelKarmaTrainer, HostAdam
from repro.hardware import GiB
from repro.models import tiny_gpt
from repro.nn import Adam, ExecutableModel

S, C, R = BlockPolicy.SWAPPED, BlockPolicy.RECOMPUTED, BlockPolicy.RESIDENT


def _blocks(graph, k):
    n = len(graph)
    bounds = sorted({round((i + 1) * n / k) for i in range(k)})
    bounds[-1] = n
    return list(zip([0] + bounds[:-1], bounds))


def _perplexity(model, data, steps=8, batch=8):
    losses = []
    for s in range(100, 100 + steps):
        x, y = data.batch(batch, s)
        model.set_step(s)
        loss = model.forward(x, y, training=False)
        losses.append(loss)
    return float(np.exp(np.mean(losses)))


def test_ppl_parity_dp_karma_vs_incore(benchmark, grids, bench_writer):
    steps = 60 if grids else 30
    graph = tiny_gpt(hidden=48, heads=4, layers=2, seq_len=12, vocab=32)
    data = SyntheticTokens(vocab=32, seq_len=12, seed=5, noise=0.02)
    plan = make_plan(graph.name, 4, _blocks(graph, 4), [S, C, S, R])

    dp = DataParallelKarmaTrainer(
        graph, plan, world_size=2, near_capacity=4 * GiB,
        far_capacity=64 * GiB, optimizer=HostAdam(lr=3e-3),
        dtype=np.float64, seed=11)
    ref = ExecutableModel(graph, dtype=np.float64, seed=11)
    ref_opt = Adam(lr=3e-3)

    for s in range(steps):
        x, y = data.batch(8, s)
        dp.train_step(x, y)
        ref.train_step(x, y, ref_opt, step=s)

    ppl_dp = _perplexity(dp.models[0], data)
    ppl_ref = _perplexity(ref, data)
    ppl_init = _perplexity(ExecutableModel(graph, dtype=np.float64,
                                           seed=11), data)
    print()
    print("§IV-D / Table IV PPL-parity proxy (tiny GPT, planted bigrams):")
    print(f"  initial perplexity          : {ppl_init:8.2f}")
    print(f"  in-core reference perplexity: {ppl_ref:8.2f}")
    print(f"  DP-KARMA (2 workers) ppl    : {ppl_dp:8.2f}")
    bench_writer.emit("accuracy_equivalence", {
        "ppl.initial": ppl_init, "ppl.incore": ppl_ref,
        "ppl.dp_karma": ppl_dp})
    benchmark(_perplexity, ref, data, 2, 4)
    assert ppl_ref < 0.7 * ppl_init, "reference training must learn"
    # dropout masks cover each worker's shard, so sharded training follows a
    # different stochastic path than full-batch training — near-parity is
    # the paper-faithful claim (its own Table IV shows 13.66 vs 13.85 PPL);
    # exact equality holds for dropout-free models (see the test suite)
    assert ppl_dp == pytest.approx(ppl_ref, rel=0.05), \
        "DP-KARMA perplexity must closely match the in-core reference"
