"""Planner-daemon benchmarks: hot-tier latency, single-flight, saturation.

The multi-tenant service layer (PR 7) claims three things worth pricing:

1. **hot-tier latency** — a repeated request served from the daemon's
   in-process LRU must be orders of magnitude faster than a cold plan
   (it skips the queue, the planner, and the disk cache entirely);
2. **single-flight merging** — K identical concurrent requests collapse
   onto one planner invocation; the merge ratio (K-1)/K is asserted
   bit-exactly, stampede protection is not probabilistic;
3. **saturated throughput** — under sustained load the bounded queue
   must keep serving (shedding the overflow with typed rejections),
   so completed requests per second stays high instead of collapsing.

Key metrics (``key_metrics.json``): ``warm_hit_latency_ms`` (lower),
``singleflight_merge_ratio`` (higher), ``saturated_throughput_rps``
(higher).  Baselines are committed with generous headroom — shared CI
runners jitter; the gate is for collapses, not microseconds.
"""

import json
import threading
import time
from typing import Any, Dict, List

from repro.cache import PlanCache
from repro.obs.metrics import METRICS
from repro.service import PlannerDaemon, QueueFull, ServiceConfig

#: The configuration planned by every request in this bench.
CONFIG = {"model": "unet", "batch": 8}


def _merges() -> float:
    return METRICS.snapshot()["counters"].get(
        "service.singleflight_merges", 0.0)


def test_hot_tier_latency(benchmark, bench_writer, tmp_path):
    """Hot-LRU hits through the daemon: the repeated-request fast path."""
    cache = PlanCache(cache_dir=tmp_path / "plans")
    with PlannerDaemon(ServiceConfig(pool_workers=2),
                       cache=cache) as daemon:
        t0 = time.perf_counter()
        cold = daemon.request(CONFIG)
        cold_s = time.perf_counter() - t0
        assert cold.tier == "cold"

        hot = benchmark(lambda: daemon.request(CONFIG))
        assert hot.tier == "hot"
        assert hot.record == cold.record
        warm_s = benchmark.stats.stats.mean

    speedup = cold_s / warm_s if warm_s else float("inf")
    print(f"\nhot tier: cold {cold_s * 1e3:.1f} ms -> hot "
          f"{warm_s * 1e6:.0f} us ({speedup:.0f}x)")
    bench_writer.emit("service", {
        "warm_hit_latency_ms": warm_s * 1e3,
        "cold_latency_ms": cold_s * 1e3,        # informational
        "hot_speedup": speedup,                 # informational
    })


def test_singleflight_merge_ratio(bench_writer):
    """K identical concurrent requests -> exactly one plan, K-1 merges."""
    K = 16
    gate = threading.Event()
    calls: List[int] = []

    def planner(config: Dict[str, Any], n: int) -> Dict[str, Any]:
        calls.append(n)
        assert gate.wait(30)
        return {"cache": "miss", **config}

    merges0 = _merges()
    with PlannerDaemon(ServiceConfig(queue_depth=K, service_workers=2),
                       planner=planner) as daemon:
        results: List[Any] = []
        lock = threading.Lock()

        def go():
            r = daemon.request(CONFIG)
            with lock:
                results.append(r)

        threads = [threading.Thread(target=go) for _ in range(K)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 30
        while _merges() - merges0 < K - 1 \
                and time.monotonic() < deadline:
            time.sleep(0.002)
        gate.set()
        for t in threads:
            t.join()

    assert len(calls) == 1, f"stampede planned {len(calls)} times"
    blobs = {json.dumps(r.record, sort_keys=True) for r in results}
    assert len(blobs) == 1
    ratio = (K - 1) / K
    print(f"\nsingle-flight: {K} concurrent identical requests, "
          f"{len(calls)} plan, merge ratio {ratio:.4f}")
    bench_writer.emit("service", {"singleflight_merge_ratio": ratio})


def test_saturated_queue_throughput(bench_writer):
    """Sustained overload: completed rps stays up, overflow is shed."""
    work_s = 0.002

    def planner(config: Dict[str, Any], n: int) -> Dict[str, Any]:
        time.sleep(work_s)
        return {"cache": "miss", **config}

    cfg = ServiceConfig(queue_depth=8, service_workers=2,
                        hot_capacity=1)   # distinct configs anyway
    completed = [0]
    shed = [0]
    lock = threading.Lock()
    # more synchronous clients than workers + queue slots (2 + 8), so the
    # overflow genuinely sheds instead of merely queueing
    n_clients, per_client = 14, 30

    with PlannerDaemon(cfg, planner=planner) as daemon:
        t0 = time.perf_counter()

        def client(cid: int) -> None:
            for i in range(per_client):
                try:
                    daemon.request({"model": "m", "batch": cid * 1000 + i})
                    with lock:
                        completed[0] += 1
                except QueueFull:
                    with lock:
                        shed[0] += 1

        threads = [threading.Thread(target=client, args=(c,))
                   for c in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0

    total = n_clients * per_client
    rps = completed[0] / wall
    ideal = cfg.service_workers / work_s
    print(f"\nsaturation: {total} requests from {n_clients} clients in "
          f"{wall:.2f} s -> {completed[0]} served ({rps:.0f} rps, ideal "
          f"{ideal:.0f}), {shed[0]} shed with queue_full")
    assert completed[0] + shed[0] == total   # nothing lost or hung
    assert completed[0] > 0
    bench_writer.emit("service", {
        "saturated_throughput_rps": rps,
        "saturated_shed_requests": float(shed[0]),   # informational
    })
