"""Table I: limitations/capabilities of related approaches.

Generated from the scheduler registry's metadata, so the table reflects
what the code actually implements.
"""

from repro.baselines import capability_matrix
from repro.eval import render_table


def test_table1_capability_matrix(benchmark, bench_writer):
    rows = benchmark(capability_matrix)
    print()
    print(render_table(rows, title="Table I — Limitations and Restrictions "
                                   "of Related Approaches"))
    names = {r["Name"] for r in rows}
    bench_writer.emit("table1_capabilities", {"methods": sorted(names)})
    assert "KARMA" in names and "vDNN++" in names
