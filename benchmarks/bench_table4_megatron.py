"""Table IV: Megatron-LM configurations under the MP+DP hybrid vs
data-parallel KARMA at half the GPUs, plus the PPL-parity proxy.

Perplexity note: the 0.7B-8.3B models cannot be trained here; DP-KARMA is
*numerically identical* to plain data parallelism (see
tests/test_distributed_numeric.py), so PPL parity is demonstrated by the
tiny-GPT convergence experiment in bench_accuracy_equivalence.py.
"""

import pytest

from repro.eval import render_table
from repro.models.transformer import MEGATRON_CONFIGS
from repro.sim import hybrid_mp_dp_lm, simulate_dp_karma_lm

# (config key, MP ways, hybrid GPUs, KARMA GPUs) — the Table IV rows
ROWS = [
    ("megatron-0.7b", 1, 64, 32),
    ("megatron-1.2b", 2, 128, 64),
    ("megatron-2.5b", 4, 256, 128),
    ("megatron-4.2b", 8, 512, 256),
    ("megatron-8.3b", 16, 1024, 512),
]
PAPER_PERF = {  # (hybrid iter/s, KARMA iter/s) as reported
    "megatron-0.7b": (5.8, 2.2), "megatron-1.2b": (1.6, 0.73),
    "megatron-2.5b": (2.9, 1.94), "megatron-4.2b": (5.0, 3.11),
    "megatron-8.3b": (8.4, 6.3),
}


@pytest.fixture(scope="module")
def table4(grids):
    rows = []
    selected = ROWS if grids else ROWS[1:4]
    for key, mp, hybrid_gpus, karma_gpus in selected:
        cfg = MEGATRON_CONFIGS[key]
        h = hybrid_mp_dp_lm(cfg, hybrid_gpus, mp, per_replica_batch=8)
        k = simulate_dp_karma_lm(cfg, karma_gpus,
                                 per_gpu_batch=8 * max(1, mp))
        paper_h, paper_k = PAPER_PERF[key]
        h_pergpu = h.global_batch / h.iteration_time / hybrid_gpus
        k_pergpu = (8 * max(1, mp)) / k.iteration_time
        rows.append({
            "eff K/H": f"{k_pergpu / h_pergpu:.2f}",
            "Config": key, "H": cfg.hidden, "L": cfg.layers,
            "P (computed)": f"{cfg.analytic_params / 1e9:.2f}B",
            "MP+DP GPUs": hybrid_gpus,
            "MP+DP iter/s": f"{1.0 / h.iteration_time:.3f}",
            "KARMA GPUs": karma_gpus,
            "KARMA iter/s": f"{1.0 / k.iteration_time:.3f}",
            "ratio K/H": f"{h.iteration_time / k.iteration_time:.2f}",
            "paper ratio": f"{paper_k / paper_h:.2f}",
        })
    return rows


def test_table4_megatron_configurations(benchmark, table4, bench_writer):
    print()
    print(render_table(table4, title="Table IV — Megatron-LM: MP+DP hybrid "
                                     "vs data-parallel KARMA"))
    bench_writer.emit("table4_megatron", {
        f"{row['Config']}.eff_karma_vs_hybrid": float(row["eff K/H"])
        for row in table4})
    cfg = MEGATRON_CONFIGS["megatron-2.5b"]
    benchmark(simulate_dp_karma_lm, cfg, 128, 32)
    # shape: per-GPU training efficiency of DP-KARMA is comparable to the
    # hybrid's (the paper's ratios imply 0.7-1.5x once normalized for
    # KARMA's larger per-GPU batch)
    for row in table4:
        eff = float(row["eff K/H"])
        assert 0.3 < eff < 3.0, f"{row['Config']}: efficiency {eff} off-shape"
