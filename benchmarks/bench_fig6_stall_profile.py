"""Fig. 6: normalized backward-phase stall profile of ResNet-200
(in-core batch 4 vs out-of-core batch 12) for SuperNeurons, vDNN++,
KARMA, and KARMA w/ recompute.

The paper's reading: vDNN++ shows an early large spike (the turnaround),
SuperNeurons spreads stalls out, and KARMA w/ recompute is flat between a
few unavoidable spikes.  We print each method's per-block backward stalls
and summary statistics of the profile.
"""

import numpy as np
import pytest

from repro.baselines import SCHEDULERS
from repro.costs import profile_graph
from repro.eval import default_platform
from repro.models import resnet200
from repro.sim import simulate_plan


@pytest.fixture(scope="module")
def profiles():
    device, _, transfer = default_platform()
    graph = resnet200()
    cost = profile_graph(graph, device, transfer, 12)
    cap = device.usable_memory
    out = {}
    for name in ("vdnn++", "superneurons", "karma", "karma+recompute"):
        plan = SCHEDULERS[name].build(graph, cost, cap, 12)
        res = simulate_plan(plan, cost, cap)
        stalls = np.zeros(plan.num_blocks)
        for b, s in res.bw_block_stalls.items():
            stalls[b] = s
        out[name] = (res, stalls)
    return out


def test_fig6_backward_stall_profiles(benchmark, profiles, bench_writer):
    bench_writer.emit("fig6_stall_profile", {
        f"total_stall_s.{name}": res.total_stall
        for name, (res, _) in profiles.items()})
    print()
    print("Fig. 6 — backward-phase stalls, ResNet-200 @ batch 12 "
          "(per-block stall in ms, back of model first):")
    for name, (res, stalls) in profiles.items():
        rev = stalls[::-1] * 1e3
        nz = rev[rev > 0]
        spark = " ".join(f"{v:.0f}" for v in rev[:24])
        print(f"  {name:16s} total {res.total_stall * 1e3:8.1f} ms | "
              f"spikes {len(nz):3d} | max {rev.max():7.1f} ms | "
              f"head: {spark}")
    benchmark(lambda: profiles["karma"][0].total_stall)

    karma_r = profiles["karma+recompute"][0]
    vdnn = profiles["vdnn++"][0]
    assert karma_r.total_stall <= vdnn.total_stall, \
        "KARMA w/ recompute must stall less than vDNN++"


def test_fig7_stall_reduction_vs_baselines(benchmark, profiles,
                                           bench_writer):
    """§IV-B.2 (Fig. 7 text): KARMA's blocking reduces stalls vs
    SuperNeurons (43% reported) and vDNN++ (37% reported)."""
    karma = benchmark(lambda: profiles["karma+recompute"][0].total_stall)
    sn = profiles["superneurons"][0].total_stall
    vd = profiles["vdnn++"][0].total_stall
    red_sn = 1.0 - karma / sn if sn > 0 else 1.0
    red_vd = 1.0 - karma / vd if vd > 0 else 1.0
    print()
    print(f"Stall reduction vs SuperNeurons: {red_sn * 100:5.1f}% "
          f"(paper: 43%)")
    print(f"Stall reduction vs vDNN++     : {red_vd * 100:5.1f}% "
          f"(paper: 37%)")
    bench_writer.emit("fig6_stall_profile", {
        "stall_reduction.vs_superneurons": red_sn,
        "stall_reduction.vs_vdnn": red_vd})
    assert red_sn > 0 and red_vd > 0
