"""Table V: cost/performance ($/P = GPUs / throughput) of classic data
parallelism (more GPUs, fixed per-GPU batch) vs data-parallel KARMA
(fixed 100 GPUs, growing out-of-core per-GPU batch).

Expected shape: KARMA is the cheaper way to scale the global batch at
first (small out-of-core penalty), then classic DP wins back as the
out-of-core slowdown magnifies (§IV-C, Table V).
"""

import pytest

from repro.core import plan as karma_plan
from repro.costs import profile_graph
from repro.eval import default_platform, render_table
from repro.models import REGISTRY
from repro.sim import dp_karma_cnn, dp_scaling_cnn, simulate_plan


def _karma_iter_time(graph, per_gpu_batch, device, transfer):
    kp = karma_plan(graph, batch_size=per_gpu_batch, device=device,
                    transfer=transfer)
    return simulate_plan(kp.plan, kp.cost, kp.capacity).makespan


@pytest.fixture(scope="module")
def table5(grids):
    device, _, transfer = default_platform()
    out = {}
    cases = [("resnet50", 128, (100, 200, 300, 400)),
             ("resnet200", 4, (100, 200, 300, 400))]
    if not grids:
        cases = [(m, b, g[:3]) for m, b, g in cases]
    for model_name, per_gpu, gpu_steps in cases:
        graph = REGISTRY[model_name].builder()
        cost = profile_graph(graph, device, transfer, per_gpu)
        incore_iter = cost.iteration_compute_time()
        params = cost.total_weight_bytes
        rows = []
        base = None
        for k, gpus in enumerate(gpu_steps):
            gbatch = per_gpu * gpus
            dp = dp_scaling_cnn(incore_iter, params, per_gpu, gpus)
            karma_batch = gbatch // 100
            k_iter = _karma_iter_time(graph, karma_batch, device, transfer)
            ka = dp_karma_cnn(k_iter, karma_batch, params, 100)
            if base is None:
                base = (dp.cost_per_perf, ka.cost_per_perf)
            rows.append({
                "global batch": gbatch,
                "DP GPUs": gpus,
                "DP $/P": f"{dp.cost_per_perf / base[0]:.3f}",
                "KARMA GPUs": 100,
                "KARMA $/P": f"{ka.cost_per_perf / base[1]:.3f}",
            })
        out[model_name] = rows
    return out


def test_table5_cost_performance(benchmark, table5, bench_writer):
    print()
    for model, rows in table5.items():
        print(render_table(rows, title=f"Table V — {model} "
                                       "(normalized cost/performance)"))
        print()
        bench_writer.emit("table5_cost_perf", {
            f"{model}.dp_cost_final": float(rows[-1]["DP $/P"]),
            f"{model}.karma_cost_final": float(rows[-1]["KARMA $/P"])})
        dp_costs = [float(r["DP $/P"]) for r in rows]
        karma_costs = [float(r["KARMA $/P"]) for r in rows]
        # both start at 1.0 and grow as the global batch scales
        assert dp_costs[0] == karma_costs[0] == 1.0
        assert dp_costs[-1] >= dp_costs[0]
        # KARMA may dip slightly while the larger batch still fits near
        # memory, then its penalty magnifies (the Table V flip)
        assert karma_costs[-1] >= karma_costs[0] - 0.05
        assert karma_costs[-1] >= dp_costs[-1] * 0.8
    benchmark(dp_scaling_cnn, 0.5, 100 * 2**20, 128, 200)
