"""Planning-service benchmarks: cold vs warm vs parallel planning.

PR 1 made the blocking search combinatorial (boundaries x margins x
placement policies), so planning is the hot path between a (model,
hardware) configuration and a running job.  This bench prices the three
remedies the planning service layer provides:

1. **warm cache** — replanning the ResNet-200 example configuration
   through the content-addressed plan cache must be >= 10x faster than
   the cold search (the acceptance bar; in practice it is 100-300x);
2. **parallel sweep** — sharding the portfolio grid across processes
   returns bit-identical results (asserted) at whatever speedup the
   grid size affords (small grids are pool-bound; reported honestly);
3. **parallel manifest** — planning independent configurations
   concurrently through the CLI service layer, the fleet-planning path.
"""

import time


from repro.cache import PlanCache
from repro.cli import _plan_config_task, plan_config
from repro.core import plan
from repro.core.blocking import (
    CandidateEvaluator,
    _uniform_bounds,
    build_inputs,
    make_problem,
)
from repro.core.solver import portfolio_search, solve_dp
from repro.costs import profile_graph
from repro.hardware import TransferModel, abci_host, karma_swap_link
from repro.hardware.spec import v100_sxm2_16gb
from repro.hardware.tiering import abci_hierarchy
from repro.models import build

import math

#: The ResNet-200 example configuration (examples/resnet200_out_of_core.py
#: plans this exact point at its largest batch).
RESNET200_BATCH = 16

MANIFEST = (
    {"model": "resnet200", "batch": 16},
    {"model": "resnet200", "batch": 20},
    {"model": "vgg16", "batch": 96},
    {"model": "unet", "batch": 24},
)


def test_warm_cache_speedup(benchmark, bench_writer, tmp_path):
    """Acceptance: warm-cache planning >= 10x faster than cold on the
    ResNet-200 example config."""
    graph = build("resnet200")
    cache = PlanCache(cache_dir=tmp_path)

    t0 = time.perf_counter()
    cold = plan(graph, batch_size=RESNET200_BATCH, cache=cache)
    cold_s = time.perf_counter() - t0
    assert not cold.cache_hit

    # disk-only warm hit: a fresh cache instance models a fresh process
    fresh = PlanCache(cache_dir=tmp_path)
    t0 = time.perf_counter()
    warm = plan(graph, batch_size=RESNET200_BATCH, cache=fresh)
    warm_disk_s = time.perf_counter() - t0
    assert warm.cache_hit
    assert warm.plan.plan_string() == cold.plan.plan_string()
    assert warm.blocking.objective == cold.blocking.objective

    # in-memory warm hit, measured properly by pytest-benchmark
    warm_mem = benchmark(lambda: plan(graph, batch_size=RESNET200_BATCH,
                                      cache=fresh))
    assert warm_mem.cache_hit
    warm_s = benchmark.stats.stats.mean

    speedup_disk = cold_s / warm_disk_s
    speedup_mem = cold_s / warm_s
    print(f"\nResNet-200 @ batch {RESNET200_BATCH}: cold {cold_s:.3f} s, "
          f"warm(disk) {warm_disk_s * 1e3:.1f} ms ({speedup_disk:.0f}x), "
          f"warm(mem) {warm_s * 1e3:.1f} ms ({speedup_mem:.0f}x)")
    bench_writer.emit("plan_cache", {
        "resnet200.cold_plan_s": cold_s,
        "resnet200.warm_disk_plan_s": warm_disk_s,
        "resnet200.warm_mem_plan_s": warm_s,
        "resnet200.warm_disk_speedup": speedup_disk,
        "resnet200.warm_mem_speedup": speedup_mem,
        "resnet200.search_s": cold.search_time,
    })
    assert speedup_disk >= 10.0, \
        f"warm-cache planning only {speedup_disk:.1f}x faster than cold"
    assert speedup_mem >= 10.0


def test_parallel_sweep_identical_and_timed(bench_writer):
    """The sharded portfolio sweep: bit-identical to serial, timed."""
    graph = build("resnet200")
    device = v100_sxm2_16gb()
    transfer = TransferModel(link=karma_swap_link(), device=device,
                             host=abci_host())
    cost = profile_graph(graph, device, transfer, RESNET200_BATCH)
    inputs = build_inputs(graph, cost, device.usable_memory)
    u = inputs.num_segments
    problem = make_problem(inputs)
    evaluator = CandidateEvaluator(
        inputs=inputs, cost=cost, capacity=device.usable_memory,
        model_name=graph.name, batch_size=RESNET200_BATCH,
        hierarchy=abci_hierarchy())

    candidates = [solve_dp(problem), list(range(1, u + 1))]
    overflow = inputs.seg_stash.sum() / max(1, inputs.ledger_capacity)
    for k in {max(2, int(math.ceil(2 * overflow))), 8, 16, u // 4 or 2}:
        candidates.append(_uniform_bounds(u, k))
    dims = ((0.5, 1.0, 2.0), ("bandwidth", "pressure"))

    t0 = time.perf_counter()
    serial = portfolio_search(candidates, dims, evaluator, n_workers=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    par = portfolio_search(candidates, dims, evaluator, n_workers=4)
    par_s = time.perf_counter() - t0

    assert par.best_candidate == serial.best_candidate
    assert par.best_dims == serial.best_dims
    assert par.best_value == serial.best_value
    print(f"\nportfolio sweep ({serial.evaluated} grid points): "
          f"serial {serial_s:.3f} s, 4 workers {par_s:.3f} s "
          f"({serial_s / par_s:.2f}x)")
    bench_writer.emit("plan_cache", {
        "sweep.grid_points": serial.evaluated,
        "sweep.serial_s": serial_s,
        "sweep.parallel4_s": par_s,
        "sweep.bit_identical": True,
    })


def test_parallel_manifest_speedup(bench_writer, tmp_path, grids):
    """Fleet planning: independent configurations across processes.

    Result equality is asserted unconditionally; the wall-clock speedup
    bar only applies when the host actually has >= 2 cores (a single-core
    runner pays pool overhead for no possible gain).
    """
    from concurrent.futures import ProcessPoolExecutor
    import multiprocessing as mp
    import os

    configs = MANIFEST if grids else MANIFEST[:3]
    cores = len(os.sched_getaffinity(0))

    def tasks(subdir):
        return [{"config": dict(c), "cache_dir": str(tmp_path / subdir),
                 "use_cache": True, "n_workers": 1} for c in configs]

    t0 = time.perf_counter()
    serial = [_plan_config_task(t) for t in tasks("serial")]
    serial_s = time.perf_counter() - t0

    ctx = mp.get_context("fork")
    t0 = time.perf_counter()
    with ProcessPoolExecutor(max_workers=len(configs),
                             mp_context=ctx) as pool:
        parallel = list(pool.map(_plan_config_task, tasks("parallel")))
    par_s = time.perf_counter() - t0

    assert not any("error" in r for r in serial + parallel)
    for a, b in zip(serial, parallel):
        assert a["plan_string"] == b["plan_string"]
        assert a["makespan_s"] == b["makespan_s"]
    speedup = serial_s / par_s
    print(f"\nmanifest of {len(configs)} configs on {cores} core(s): "
          f"serial {serial_s:.2f} s, parallel {par_s:.2f} s "
          f"({speedup:.2f}x)")
    bench_writer.emit("plan_cache", {
        "manifest.configs": len(configs),
        "manifest.cores": cores,
        "manifest.serial_s": serial_s,
        "manifest.parallel_s": par_s,
        "manifest.parallel_speedup": speedup,
    })
    if cores >= 2:
        assert speedup > 1.2, \
            f"parallel manifest planning not faster ({speedup:.2f}x)"


def test_cli_service_reports_cache_state(tmp_path):
    """The CLI result records carry hit/miss + wall time (the service
    contract examples and CI smoke rely on)."""
    cfg = {"model": "unet", "batch": 16}
    first = plan_config(cfg, cache_dir=str(tmp_path))
    second = plan_config(cfg, cache_dir=str(tmp_path))
    assert first["cache"] == "miss" and second["cache"] == "hit"
    assert second["wall_s"] < first["wall_s"]
    assert first["search_s"] > 0
