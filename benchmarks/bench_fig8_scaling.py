"""Fig. 8: time-per-epoch scaling of Megatron-LM (2.5B, 8.3B) and
Turing-NLG (17B) — MP+DP hybrid (plain and with the phased gradient
exchange) vs data-parallel KARMA at GPU parity, and ZeRO vs KARMA vs
ZeRO+KARMA.
"""


from repro.eval import render_series
from repro.models.transformer import MEGATRON_CONFIGS, TURING_NLG
from repro.sim import (
    hybrid_mp_dp_lm,
    karma_plus_zero_lm,
    simulate_dp_karma_lm,
    zero_hybrid_lm,
)

EPOCH = 7_200_000  # OpenWebText samples (Table III)


def _megatron_panel(cfg, mp, gpus):
    hybrid, phased, karma = [], [], []
    for n in gpus:
        h = hybrid_mp_dp_lm(cfg, n, mp, 8)
        hp = hybrid_mp_dp_lm(cfg, n, mp, 8, phased_exchange=True)
        k = simulate_dp_karma_lm(cfg, n, 8 * mp)
        hybrid.append(h.epoch_time(EPOCH) / 3600)
        phased.append(hp.epoch_time(EPOCH) / 3600)
        karma.append(k.epoch_time(EPOCH) / 3600)
    return hybrid, phased, karma


def test_fig8_megatron_parity(benchmark, grids, bench_writer):
    gpus = (128, 256, 512, 1024, 2048) if grids else (256, 1024, 2048)
    print()
    for key, mp in (("megatron-2.5b", 4), ("megatron-8.3b", 16)):
        cfg = MEGATRON_CONFIGS[key]
        hybrid, phased, karma = _megatron_panel(cfg, mp, gpus)
        print(render_series(
            f"Fig. 8 — {key} time/epoch (hours), GPU parity", gpus,
            {"MP+DP": hybrid, "MP+DP (opt. grad ex.)": phased,
             "DP KARMA": karma}, x_label="GPUs"))
        print()
        bench_writer.emit("fig8_scaling", {
            f"{key}.hybrid_epoch_h@{gpus[-1]}": hybrid[-1],
            f"{key}.karma_epoch_h@{gpus[-1]}": karma[-1]})
        # the paper's crossover: KARMA wins at 2,048 GPUs
        assert karma[-1] < hybrid[-1], \
            f"{key}: KARMA must overtake the hybrid at {gpus[-1]} GPUs"
        assert phased[-1] <= hybrid[-1]
    benchmark(hybrid_mp_dp_lm, MEGATRON_CONFIGS["megatron-2.5b"], 512, 4, 8)


def test_fig8_turing_nlg(benchmark, grids, bench_writer):
    gpus = (512, 1024, 2048) if grids else (1024, 2048)
    zero, karma, zk = [], [], []
    for n in gpus:
        zero.append(zero_hybrid_lm(TURING_NLG, n, 16, 8)
                    .epoch_time(EPOCH) / 3600)
        karma.append(simulate_dp_karma_lm(TURING_NLG, n, 128)
                     .epoch_time(EPOCH) / 3600)
        zk.append(karma_plus_zero_lm(TURING_NLG, n, 128)
                  .epoch_time(EPOCH) / 3600)
    print()
    print(render_series("Fig. 8 — Turing-NLG 17B time/epoch (hours)", gpus,
                        {"ZeRO": zero, "KARMA": karma, "ZeRO+KARMA": zk},
                        x_label="GPUs"))
    speedup = zero[-1] / zk[-1]
    print(f"\nZeRO+KARMA speedup over ZeRO at {gpus[-1]} GPUs: "
          f"{speedup:.2f}x (paper: 1.35x)")
    bench_writer.emit("fig8_scaling", {
        f"turing-nlg.zero_plus_karma_speedup@{gpus[-1]}": speedup})
    benchmark(karma_plus_zero_lm, TURING_NLG, 2048, 128)
    # ordering from §IV-C: KARMA < ZeRO < ZeRO+KARMA
    assert zk[-1] < zero[-1] < karma[-1]
    assert speedup >= 1.1
