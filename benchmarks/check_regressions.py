#!/usr/bin/env python
"""Benchmark regression gate: compare BENCH_*.json against baselines.

The bench suite emits one ``BENCH_<name>.json`` artifact per module
(see ``benchmarks/conftest.py``).  This script compares the *key metrics*
of a fresh run against the committed baselines under
``benchmarks/baselines/`` and exits non-zero when any key metric regressed
by more than the tolerance (default 15%).

Key metrics are declared in ``benchmarks/baselines/key_metrics.json``::

    {"fig5_single_gpu": {"speedup[mean]": "higher", ...},
     "fig2_strategies": {"makespan_s.capacity_based": "lower", ...}}

``"higher"`` means bigger is better (speedups, occupancy, efficiency);
``"lower"`` means smaller is better (makespans, stalls, costs).  Only
declared metrics gate — wall-clock timings and informational fields are
deliberately not listed, because they jitter with the runner.

CI runs this after the bench job; apply the ``allow-bench-regression``
label to a PR to skip the gate for an intentional trade-off (see README).

Usage::

    python benchmarks/check_regressions.py
    python benchmarks/check_regressions.py --current-dir /tmp/bench-out \
        --tolerance 0.15
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

DEFAULT_TOLERANCE = 0.15
BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
BASELINE_DIR = BENCH_DIR / "baselines"


@dataclass(frozen=True)
class Finding:
    """One gate violation (regression, missing, or invalid metric)."""

    bench: str
    metric: str
    kind: str                     # "regression" | "missing" | "invalid"
    baseline: Optional[float] = None
    current: Optional[object] = None   # the raw value for "invalid" kinds
    change: Optional[float] = None  # signed fractional change, + = worse

    def describe(self) -> str:
        if self.kind == "missing":
            return f"{self.bench}: {self.metric} — missing from current run"
        if self.kind == "invalid":
            return (f"{self.bench}: {self.metric} — current value is not a "
                    f"finite number (got {self.current!r}); the bench run "
                    "is corrupted")
        assert self.baseline is not None and self.change is not None
        return (f"{self.bench}: {self.metric} regressed "
                f"{self.change * 100:+.1f}% "
                f"(baseline {self.baseline:.6g} -> current "
                f"{self.current:.6g})")


def load_metrics(path: Path) -> Dict[str, object]:
    record = json.loads(path.read_text())
    metrics = record.get("metrics", {})
    if not isinstance(metrics, dict):
        raise ValueError(f"{path}: 'metrics' is not an object")
    return metrics


def regression_fraction(baseline: float, current: float,
                        direction: str) -> float:
    """Signed fractional change where positive means *worse*.

    ``direction='lower'``: worse = bigger (a makespan growing).
    ``direction='higher'``: worse = smaller (a speedup shrinking).
    A zero baseline cannot regress proportionally; treat any change as
    its absolute value against 1.0 to stay defined.
    """
    if direction not in ("lower", "higher"):
        raise ValueError(f"direction must be 'lower' or 'higher', "
                         f"got {direction!r}")
    if baseline == 0:
        delta = current - baseline
        return delta if direction == "lower" else -delta
    change = (current - baseline) / abs(baseline)
    return change if direction == "lower" else -change


def compare_bench(bench: str, current: Dict[str, object],
                  baseline: Dict[str, object],
                  key_metrics: Dict[str, str],
                  tolerance: float = DEFAULT_TOLERANCE) -> List[Finding]:
    """Gate one bench's current metrics against its baseline."""
    def numeric(value: object) -> Optional[float]:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        v = float(value)
        return v if math.isfinite(v) else None

    findings: List[Finding] = []
    for metric, direction in sorted(key_metrics.items()):
        if metric not in baseline:
            # baseline does not pin this metric yet: nothing to gate
            continue
        base_v = numeric(baseline[metric])
        if base_v is None:
            # a non-numeric baseline cannot gate proportionally
            continue
        if metric not in current:
            findings.append(Finding(bench, metric, "missing"))
            continue
        cur_v = numeric(current[metric])
        if cur_v is None:
            # a gated metric degrading to NaN/null/string is a corrupted
            # run, not a pass — NaN fails every comparison silently
            findings.append(Finding(bench, metric, "invalid",
                                    baseline=base_v,
                                    current=current[metric]))
            continue
        change = regression_fraction(base_v, cur_v, direction)
        if change > tolerance:
            findings.append(Finding(bench, metric, "regression",
                                    baseline=base_v, current=cur_v,
                                    change=change))
    return findings


def run_gate(current_dir: Path, baseline_dir: Path,
             key_metrics_path: Path,
             tolerance: float = DEFAULT_TOLERANCE,
             allow_missing: bool = False) -> List[Finding]:
    """Compare every baselined bench; returns all findings."""
    key_metrics: Dict[str, Dict[str, str]] = json.loads(
        key_metrics_path.read_text())
    findings: List[Finding] = []
    checked = 0
    for baseline_path in sorted(baseline_dir.glob("BENCH_*.json")):
        bench = baseline_path.stem[len("BENCH_"):]
        keys = key_metrics.get(bench)
        if not keys:
            continue
        current_path = current_dir / baseline_path.name
        if not current_path.is_file():
            if not allow_missing:
                findings.append(Finding(bench, "<artifact>", "missing"))
            continue
        findings.extend(compare_bench(
            bench, load_metrics(current_path), load_metrics(baseline_path),
            keys, tolerance))
        checked += 1
    print(f"bench gate: checked {checked} artifact(s) against "
          f"{baseline_dir} at tolerance {tolerance * 100:.0f}%")
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current-dir", type=Path, default=REPO_ROOT,
                        help="where the fresh BENCH_*.json artifacts live "
                             "(default: repo root)")
    parser.add_argument("--baseline-dir", type=Path, default=BASELINE_DIR)
    parser.add_argument("--key-metrics", type=Path,
                        default=BASELINE_DIR / "key_metrics.json")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="max tolerated fractional regression "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="do not fail when a baselined artifact is "
                             "absent from the current run")
    args = parser.parse_args(argv)

    findings = run_gate(args.current_dir, args.baseline_dir,
                        args.key_metrics, args.tolerance,
                        args.allow_missing)
    if findings:
        print(f"\nFAIL: {len(findings)} gate violation(s):",
              file=sys.stderr)
        for f in findings:
            print(f"  {f.describe()}", file=sys.stderr)
        print("\nIf this trade-off is intentional, refresh "
              "benchmarks/baselines/ in this PR (and say why in the PR "
              "body), or apply the 'allow-bench-regression' label to "
              "skip the gate.", file=sys.stderr)
        return 1
    print("PASS: no key metric regressed beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
