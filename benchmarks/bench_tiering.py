"""Tiered offload: the HBM -> DRAM -> NVMe hierarchy beyond the paper.

ZeRO-Infinity's regime: host DRAM is itself too small for the swapped
stash, so the cold overflow demotes to node-local NVMe.  This bench
demonstrates the subsystem's headline claim end to end:

1. a model/capacity configuration whose plan OOMs under the two-tier
   (DRAM-only far pool) hierarchy plans *and executes* successfully once
   the NVMe tier is enabled, with gradients bit-identical to vanilla
   in-core backprop;
2. the cost of the storage tier is visible: the NVMe-placed plan's
   simulated makespan strictly exceeds its DRAM-placed twin, with the
   difference attributable to the d2s/s2d storage links.
"""

import numpy as np
import pytest

from repro.core import plan as karma_plan
from repro.core import BlockPolicy, make_plan
from repro.costs import profile_graph
from repro.hardware import (
    GiB,
    MiB,
    MemorySpace,
    OutOfMemoryError,
    TieredMemorySpace,
    TransferModel,
    abci_host,
    karma_swap_link,
    tiny_test_device,
    tiny_test_hierarchy,
)
from repro.hardware.spec import LinkSpec
from repro.hardware.tiering import MemoryHierarchy, TierSpec
from repro.models.builder import GraphBuilder
from repro.nn import ExecutableModel
from repro.runtime import OutOfCoreExecutor
from repro.sim import simulate_plan
from repro.tiering import PlacementError, swapped_stash_bytes

from tests.helpers import uniform_blocks as _blocks

S, R = BlockPolicy.SWAPPED, BlockPolicy.RESIDENT


def _bench_cnn():
    b = GraphBuilder("tiering_cnn")
    b.input((3, 16, 16))
    for width in (8, 8, 16):
        b.conv(width, 3)
        b.relu()
    b.pool(2, 2)
    b.conv(16, 3)
    b.relu()
    b.global_avg_pool()
    b.flatten()
    b.linear(5)
    b.softmax()
    b.loss()
    return b.finish()


@pytest.fixture(scope="module")
def platform():
    graph = _bench_cnn()
    device = tiny_test_device(memory=500_000)
    transfer = TransferModel(link=karma_swap_link(), device=device,
                             host=abci_host())
    cost = profile_graph(graph, device, transfer, batch_size=8)
    return graph, device, transfer, cost


def test_tiering_nvme_rescues_dram_oom(benchmark, platform, bench_writer):
    """The acceptance demo: two-tier OOMs, three-tier trains bit-exactly."""
    graph, device, transfer, cost = platform
    blocks = _blocks(graph, 6)
    policies = [S] * 5 + [R]
    stash = swapped_stash_bytes(blocks, policies, cost)
    # a far pool able to hold less than half the swapped stash
    dram_cap = int(0.4 * sum(stash.values()))
    nvme_cap = 64 * MiB

    # ---- planning: the two-tier hierarchy has no feasible placement
    two_tier = MemoryHierarchy(
        tiers=(TierSpec("hbm", 500_000, 10e9),
               TierSpec("dram", dram_cap, 10e9)),
        links_down=(LinkSpec("bench-link", 1e9),))
    with pytest.raises((PlacementError, ValueError)):
        karma_plan(graph, 8, device=device, transfer=transfer,
                   hierarchy=two_tier)
    three_tier = tiny_test_hierarchy(hbm=500_000, dram=dram_cap,
                                     nvme=nvme_cap)
    # capacity-based strategy: with Opt-2 enabled the planner would buy
    # the NVMe spill back via recompute (its swaps are priced at true
    # storage cost) — recompute=False pins the pure-swap regime
    kp = karma_plan(graph, 8, device=device, transfer=transfer,
                    hierarchy=three_tier, recompute=False)
    assert kp.plan.uses_storage, "the spill must actually reach NVMe"

    # ---- numeric execution: same story under hard pool capacities
    rng = np.random.default_rng(0)
    x = rng.standard_normal((8, 3, 16, 16))
    y = rng.integers(0, 5, 8)
    ref_model = ExecutableModel(graph, dtype=np.float64, seed=7)
    ref_model.set_step(0)
    ref_model.zero_grad()
    ref_model.forward(x, y)
    ref_model.backward()
    ref = {(l, p): a.copy() for l, p, a in ref_model.gradients()}

    exec_plan = make_plan(graph.name, 8, blocks, policies)
    # numeric ctx bytes run ~4x the analytic stash estimate: pick a DRAM
    # pool below the ~3.5 MiB two-tier demand yet able to bounce-stage
    # any single layer (largest ~1.25 MiB) on its way to NVMe
    exec_dram = int(2.5 * MiB)
    with pytest.raises(OutOfMemoryError):
        model = ExecutableModel(graph, dtype=np.float64, seed=7)
        ex = OutOfCoreExecutor(model, exec_plan,
                               MemorySpace(2 * GiB, exec_dram))
        model.zero_grad()
        ex.run_iteration(x, y, step=0)

    # NVMe enabled: demote the cold majority of blocks past DRAM
    placements = {b: (2 if b < 3 else 1) for b in stash}
    tiered_plan = make_plan(graph.name, 8, blocks, policies,
                            placements=placements)
    model = ExecutableModel(graph, dtype=np.float64, seed=7)
    space = TieredMemorySpace([2 * GiB, exec_dram, 4 * GiB])
    ex = OutOfCoreExecutor(model, tiered_plan, space)
    model.zero_grad()
    loss = ex.run_iteration(x, y, step=0)
    grads = {(l, p): a.copy() for l, p, a in model.gradients()}
    assert np.isfinite(loss)
    for key, a in ref.items():
        assert np.array_equal(a, grads[key]), f"grad mismatch {key}"
    assert space.pools[2].peak_in_use > 0, "NVMe pool must be exercised"

    print()
    print("Tiered offload — NVMe rescues a DRAM-bound configuration:")
    print(f"  swapped stash        : {sum(stash.values()) / 2**20:.2f} MiB "
          f"over {len(stash)} blocks")
    print(f"  DRAM far pool        : {exec_dram / 2**20:.2f} MiB -> OOM")
    print(f"  + NVMe tier          : trains, loss {loss:.4f}, gradients "
          "bit-identical to in-core")
    print(f"  planner plan         : {kp.plan.plan_string()[:200]}")
    bench_writer.emit("tiering", {
        "swapped_stash_bytes": int(sum(stash.values())),
        "dram_pool_bytes": exec_dram,
        "two_tier_outcome": "OOM",
        "three_tier_outcome": "trained",
        "gradients_bit_identical": True,
        "nvme_peak_bytes": int(space.pools[2].peak_in_use),
        "nvme_demote_bytes": int(space.demote_bytes.get(1, 0)),
    })
    benchmark(lambda: simulate_plan(kp.plan, kp.cost, kp.capacity,
                                    hierarchy=three_tier))


def test_tiering_storage_cost_visible(benchmark, platform, bench_writer):
    """The DRAM/NVMe twin comparison: storage placement costs makespan."""
    graph, device, transfer, cost = platform
    blocks = _blocks(graph, 6)
    policies = [S] * 5 + [R]
    stash = swapped_stash_bytes(blocks, policies, cost)
    hier = tiny_test_hierarchy(hbm=500_000,
                               dram=4 * int(sum(stash.values())),
                               nvme=64 * MiB)
    capacity = device.usable_memory

    dram_plan = make_plan(graph.name, 8, blocks, policies,
                          placements={b: 1 for b in stash})
    nvme_plan = make_plan(graph.name, 8, blocks, policies,
                          placements={b: 2 for b in stash})
    res_dram = simulate_plan(dram_plan, cost, capacity, hierarchy=hier)
    res_nvme = simulate_plan(nvme_plan, cost, capacity, hierarchy=hier)
    assert res_nvme.makespan > res_dram.makespan
    assert res_nvme.storage_busy > 0 and res_dram.storage_busy == 0

    slowdown = res_nvme.makespan / res_dram.makespan
    print()
    print("Tiered offload — storage link cost (identical blocking):")
    print(f"  DRAM-placed twin : {res_dram.summary()}")
    print(f"  NVMe-placed twin : {res_nvme.summary()}")
    print(f"  NVMe slowdown    : {slowdown:.2f}x")
    bench_writer.emit("tiering", {
        "dram_makespan_s": res_dram.makespan,
        "nvme_makespan_s": res_nvme.makespan,
        "nvme_slowdown": slowdown,
        "nvme_storage_busy_s": res_nvme.storage_busy,
    })
    benchmark(lambda: simulate_plan(nvme_plan, cost, capacity,
                                    hierarchy=hier))
