"""Thin setup.py shim so `pip install -e .` / `setup.py develop` work on
environments whose setuptools lacks PEP-660 editable-wheel support."""

from setuptools import setup

setup()
